//! # nupea-pnr — NUPEA-aware place-and-route
//!
//! Maps a dataflow graph onto a spatial fabric the way effcc does (§5 of the
//! paper):
//!
//! 1. [`netlist`] extraction — every DFG node becomes a cell needing one PE
//!    slot (compute / control-flow / xdata), memory cells restricted to
//!    load-store PEs.
//! 2. [`place`] — load-store instructions are seated first along the NUPEA
//!    domain preference order, prioritized by criticality class, then the
//!    rest BFS-place near their neighbours; simulated annealing refines the
//!    placement against a wirelength + throughput-reduction objective.
//! 3. [`route`] — negotiated-congestion (PathFinder-style) routing over the
//!    data NoC's track channels.
//! 4. [`timing`] — the longest routed path picks the fabric clock divider.
//!
//! The three heuristics of Fig. 12 — Domain-Unaware, Only-Domain-Aware, and
//! effcc (criticality + domain aware) — are selected via
//! [`Heuristic`].
//!
//! # Example
//!
//! ```
//! use nupea_fabric::Fabric;
//! use nupea_ir::graph::Dfg;
//! use nupea_ir::op::Op;
//! use nupea_pnr::{pnr, PnrConfig};
//!
//! let mut g = Dfg::new("tiny");
//! let (p, _) = g.add_param("addr");
//! let ld = g.add_node(Op::Load);
//! g.connect(p, 0, ld, Op::LOAD_ADDR);
//! let (s, _) = g.add_sink("v");
//! g.connect(ld, Op::OUT_VALUE, s, 0);
//! nupea_ir::criticality::classify(&mut g);
//!
//! let fabric = Fabric::monaco(8, 8, 3)?;
//! let placed = pnr(&g, &fabric, &PnrConfig::default())?;
//! assert_eq!(placed.pe_of.len(), g.len());
//! assert!(placed.timing.divider >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitstream;
pub mod netlist;
pub mod place;
pub mod route;
pub mod timing;

pub use bitstream::{parse_bitstream, render_placement, write_bitstream, Bitstream};
pub use netlist::{Netlist, SlotKind};
pub use place::{check_capacity, check_capacity_avoiding, Heuristic, PlaceConfig, Placement};
pub use route::{route, Routing};
pub use timing::Timing;

use nupea_fabric::{DomainId, Fabric, PeId};
use nupea_ir::graph::Dfg;
use std::fmt;

/// Errors from place-and-route. `Unplaceable`/`Unroutable` are the signals
/// the auto-parallelizer uses to stop increasing the parallelism degree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PnrError {
    /// The netlist exceeds fabric capacity.
    Unplaceable(String),
    /// Routing congestion could not be resolved.
    Unroutable {
        /// Channels still over capacity after the iteration budget.
        overused: usize,
    },
}

impl fmt::Display for PnrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnrError::Unplaceable(why) => write!(f, "unplaceable: {why}"),
            PnrError::Unroutable { overused } => {
                write!(f, "unroutable: {overused} channels over capacity")
            }
        }
    }
}

impl std::error::Error for PnrError {}

/// Full PnR configuration.
#[derive(Debug, Clone, Default)]
pub struct PnrConfig {
    /// Placement configuration (heuristic, seed, effort).
    pub place: PlaceConfig,
}

impl PnrConfig {
    /// Config with a given heuristic, defaults elsewhere.
    pub fn with_heuristic(heuristic: Heuristic) -> Self {
        PnrConfig {
            place: PlaceConfig {
                heuristic,
                ..PlaceConfig::default()
            },
        }
    }
}

/// A fully placed-and-routed design, ready for simulation.
#[derive(Debug, Clone)]
pub struct Placed {
    /// PE hosting each DFG node (indexed by node index).
    pub pe_of: Vec<PeId>,
    /// Routing outcome.
    pub routing: Routing,
    /// Timing outcome (longest path, clock divider).
    pub timing: Timing,
    /// Final placement cost (annealer objective).
    pub cost: f64,
}

impl Placed {
    /// Histogram of memory instructions per NUPEA domain, indexed by domain
    /// id. Useful for checking that critical loads landed in fast domains.
    pub fn domain_histogram(&self, dfg: &Dfg, fabric: &Fabric) -> Vec<usize> {
        let mut hist = vec![0usize; usize::from(fabric.num_domains())];
        for (id, node) in dfg.iter() {
            if node.op.is_memory() {
                if let Some(DomainId(d)) = fabric.domain(self.pe_of[id.index()]) {
                    hist[usize::from(d)] += 1;
                }
            }
        }
        hist
    }

    /// Histogram restricted to one criticality class.
    pub fn domain_histogram_for(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        class: nupea_ir::graph::Criticality,
    ) -> Vec<usize> {
        let mut hist = vec![0usize; usize::from(fabric.num_domains())];
        for (id, node) in dfg.iter() {
            if node.op.is_memory() && node.meta.criticality == Some(class) {
                if let Some(DomainId(d)) = fabric.domain(self.pe_of[id.index()]) {
                    hist[usize::from(d)] += 1;
                }
            }
        }
        hist
    }
}

/// Run the complete PnR pipeline: netlist → place → route → timing.
///
/// The DFG should already be criticality-classified (see
/// [`nupea_ir::criticality::classify`]) when using
/// [`Heuristic::CriticalityAware`].
///
/// # Errors
///
/// Returns [`PnrError`] when the design does not fit or cannot be routed —
/// the auto-parallelizer's stop signal.
pub fn pnr(dfg: &Dfg, fabric: &Fabric, cfg: &PnrConfig) -> Result<Placed, PnrError> {
    let netlist = Netlist::from_dfg(dfg);
    let placement = place::place(fabric, &netlist, &cfg.place)?;
    let routing = route::route(fabric, &netlist, &placement.pe_of)?;
    let timing = timing::analyze(fabric, routing.max_hops);
    Ok(Placed {
        pe_of: placement.pe_of,
        routing,
        timing,
        cost: placement.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nupea_ir::op::{BinOpKind, CmpKind, Op, SteerPolarity};

    /// A loop with one critical (recurrence) load and several streaming
    /// loads — the shape PnR must prioritize correctly.
    fn mixed_criticality_graph(streaming_loads: usize) -> Dfg {
        let mut g = Dfg::new("mixed");
        let (head, _) = g.add_param("head");
        let carry = g.add_node(Op::Carry);
        g.connect(head, 0, carry, Op::CARRY_INIT);
        let cond = g.add_node(Op::Cmp(CmpKind::Ne));
        g.connect(carry, 0, cond, 0);
        g.set_imm(cond, 1, -1);
        g.connect(cond, 0, carry, Op::CARRY_DECIDER);
        let body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.connect(cond, 0, body, 0);
        g.connect(carry, 0, body, 1);
        let critical_ld = g.add_node(Op::Load);
        g.connect(body, 0, critical_ld, Op::LOAD_ADDR);
        g.meta_mut(critical_ld).in_leaf_loop = true;
        g.connect(critical_ld, Op::OUT_VALUE, carry, Op::CARRY_BACK);
        for i in 0..streaming_loads {
            let addr = g.add_node(Op::BinOp(BinOpKind::Add));
            g.connect(body, 0, addr, 0);
            g.set_imm(addr, 1, i as i64);
            let ld = g.add_node(Op::Load);
            g.connect(addr, 0, ld, Op::LOAD_ADDR);
            g.meta_mut(ld).in_leaf_loop = true;
            let (s, _) = g.add_sink(format!("v{i}"));
            g.connect(ld, Op::OUT_VALUE, s, 0);
        }
        nupea_ir::criticality::classify(&mut g);
        g
    }

    #[test]
    fn criticality_aware_puts_critical_load_in_d0() {
        let g = mixed_criticality_graph(12);
        let fabric = Fabric::monaco(12, 12, 3).unwrap();
        let placed = pnr(&g, &fabric, &PnrConfig::default()).unwrap();
        let crit_hist =
            placed.domain_histogram_for(&g, &fabric, nupea_ir::graph::Criticality::Critical);
        assert_eq!(
            crit_hist[0], 1,
            "the critical load must land in D0; histogram {crit_hist:?}"
        );
    }

    #[test]
    fn domain_unaware_ignores_domains() {
        // With many memory ops and a shuffled order, Domain-Unaware spreads
        // loads across domains instead of packing D0/D1.
        let g = mixed_criticality_graph(30);
        let fabric = Fabric::monaco(12, 12, 3).unwrap();
        let placed = pnr(
            &g,
            &fabric,
            &PnrConfig::with_heuristic(Heuristic::DomainUnaware),
        )
        .unwrap();
        let hist = placed.domain_histogram(&g, &fabric);
        let slow: usize = hist[2..].iter().sum();
        assert!(
            slow > 0,
            "domain-unaware placement should leave some loads in slow domains: {hist:?}"
        );
    }

    #[test]
    fn only_domain_aware_packs_fast_domains() {
        let g = mixed_criticality_graph(10);
        let fabric = Fabric::monaco(12, 12, 3).unwrap();
        let placed = pnr(
            &g,
            &fabric,
            &PnrConfig::with_heuristic(Heuristic::OnlyDomainAware),
        )
        .unwrap();
        let hist = placed.domain_histogram(&g, &fabric);
        // 11 memory ops; D0 (18 slots at 12x12 per row layout: 6 rows × 3
        // cols) can hold them all.
        assert_eq!(hist[0], 11, "all loads fit in D0: {hist:?}");
    }

    #[test]
    fn unplaceable_when_too_many_memory_ops() {
        let mut g = Dfg::new("huge");
        let (p, _) = g.add_param("a");
        for _ in 0..40 {
            let ld = g.add_node(Op::Load);
            g.connect(p, 0, ld, Op::LOAD_ADDR);
        }
        let fabric = Fabric::monaco(4, 8, 2).unwrap(); // 16 LS PEs
        match pnr(&g, &fabric, &PnrConfig::default()) {
            Err(PnrError::Unplaceable(_)) => {}
            other => panic!("expected Unplaceable, got {other:?}"),
        }
    }

    #[test]
    fn placement_is_deterministic_for_a_seed() {
        let g = mixed_criticality_graph(6);
        let fabric = Fabric::monaco(8, 8, 3).unwrap();
        let a = pnr(&g, &fabric, &PnrConfig::default()).unwrap();
        let b = pnr(&g, &fabric, &PnrConfig::default()).unwrap();
        assert_eq!(a.pe_of, b.pe_of);
        assert_eq!(a.timing, b.timing);
    }

    #[test]
    fn divider_reasonable_on_12x12() {
        let g = mixed_criticality_graph(12);
        let fabric = Fabric::monaco(12, 12, 3).unwrap();
        let placed = pnr(&g, &fabric, &PnrConfig::default()).unwrap();
        assert!(
            placed.timing.divider <= 2,
            "calibration target: divider ≤ 2, got {} (max hops {})",
            placed.timing.divider,
            placed.timing.max_hops
        );
    }

    #[test]
    fn avoid_set_pes_never_host_nodes() {
        let g = mixed_criticality_graph(8);
        let fabric = Fabric::monaco(8, 8, 3).unwrap();
        let baseline = pnr(&g, &fabric, &PnrConfig::default()).unwrap();
        // Fail three PEs the baseline actually uses, spread across the
        // placement, and re-place around them.
        let mut used: Vec<PeId> = baseline.pe_of.clone();
        used.sort_unstable_by_key(|pe| pe.0);
        used.dedup();
        let avoid: Vec<PeId> = used.iter().step_by(used.len() / 3).copied().collect();
        let cfg = PnrConfig {
            place: PlaceConfig {
                avoid: avoid.clone(),
                ..PlaceConfig::default()
            },
        };
        let placed = pnr(&g, &fabric, &cfg).unwrap();
        for pe in &placed.pe_of {
            assert!(!avoid.contains(pe), "avoided PE {pe:?} hosts a node");
        }
        // Determinism holds with an avoid-set too.
        let again = pnr(&g, &fabric, &cfg).unwrap();
        assert_eq!(placed.pe_of, again.pe_of);
    }

    #[test]
    fn avoiding_all_d0_ls_pes_forces_a_domain_downgrade() {
        let g = mixed_criticality_graph(4);
        let fabric = Fabric::monaco(12, 12, 3).unwrap();
        // Spare-PE recovery's worst case: every D0 load-store PE failed.
        let avoid: Vec<PeId> = fabric
            .ls_pref_order()
            .into_iter()
            .filter(|&pe| fabric.domain(pe) == Some(DomainId(0)))
            .collect();
        assert!(!avoid.is_empty());
        let cfg = PnrConfig {
            place: PlaceConfig {
                avoid,
                ..PlaceConfig::default()
            },
        };
        let placed = pnr(&g, &fabric, &cfg).unwrap();
        let hist = placed.domain_histogram(&g, &fabric);
        assert_eq!(hist[0], 0, "no loads may land in failed D0: {hist:?}");
        let crit = placed.domain_histogram_for(&g, &fabric, nupea_ir::graph::Criticality::Critical);
        assert_eq!(
            crit.iter().sum::<usize>(),
            1,
            "the critical load is placed somewhere: {crit:?}"
        );
        assert_eq!(
            crit[1], 1,
            "the critical load falls back to the next-best domain: {crit:?}"
        );
    }

    #[test]
    fn avoid_set_exhausting_ls_capacity_is_typed_unplaceable() {
        let mut g = Dfg::new("ls-heavy");
        let (p, _) = g.add_param("a");
        for _ in 0..12 {
            let ld = g.add_node(Op::Load);
            g.connect(p, 0, ld, Op::LOAD_ADDR);
        }
        let fabric = Fabric::monaco(4, 8, 2).unwrap(); // 16 LS PEs
        let ls = fabric.ls_pref_order();
        // Fail 5 of 16 LS PEs: 12 loads no longer fit in 11 survivors.
        let avoid: Vec<PeId> = ls.into_iter().take(5).collect();
        // Duplicates in the avoid list must not double-count.
        let mut avoid_dup = avoid.clone();
        avoid_dup.extend_from_slice(&avoid);
        let netlist = Netlist::from_dfg(&g);
        match check_capacity_avoiding(&fabric, &netlist, &avoid_dup) {
            Err(PnrError::Unplaceable(why)) => {
                assert!(why.contains("memory instructions"), "{why}");
                assert!(
                    why.contains("11"),
                    "have-count reflects the avoid-set: {why}"
                );
            }
            other => panic!("expected Unplaceable, got {other:?}"),
        }
        let cfg = PnrConfig {
            place: PlaceConfig {
                avoid,
                ..PlaceConfig::default()
            },
        };
        match pnr(&g, &fabric, &cfg) {
            Err(PnrError::Unplaceable(_)) => {}
            other => panic!("expected Unplaceable, got {other:?}"),
        }
    }

    #[test]
    fn all_nodes_respect_slot_exclusivity() {
        let g = mixed_criticality_graph(12);
        let fabric = Fabric::monaco(12, 12, 3).unwrap();
        let placed = pnr(&g, &fabric, &PnrConfig::default()).unwrap();
        let nl = Netlist::from_dfg(&g);
        let mut seen = std::collections::HashSet::new();
        for (i, cell) in nl.cells.iter().enumerate() {
            let key = (placed.pe_of[i], cell.slot.index());
            assert!(seen.insert(key), "two cells share {key:?}");
            if cell.needs_ls {
                assert_eq!(
                    fabric.kind(placed.pe_of[i]),
                    nupea_fabric::PeKind::LoadStore
                );
            }
        }
    }
}

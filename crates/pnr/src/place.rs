//! Placement: NUPEA-aware initial placement plus simulated-annealing
//! refinement (§5 of the paper).
//!
//! The initial placement seats load-store instructions first, walking the
//! fabric's NUPEA preference order (`… ≤ D1.c0 ≤ D0.c2 ≤ D0.c1 ≤ D0.c0`) in
//! criticality order, then BFS-places the remaining instructions through
//! defs and uses. Simulated annealing then minimizes a cost that combines
//! wirelength with a throughput-reduction factor for memory instructions in
//! slow domains, weighted by criticality class.

use crate::netlist::{Cell, Netlist, SlotKind};
use crate::PnrError;
use nupea_fabric::{Fabric, PeId, PeKind};
use nupea_ir::graph::Criticality;
use nupea_rng::Xoshiro256;
use std::collections::VecDeque;

/// Which placement heuristic to run — exactly the three configurations of
/// Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// No incentive to place memory instructions near memory.
    DomainUnaware,
    /// Prefer fast NUPEA domains for all memory instructions equally.
    OnlyDomainAware,
    /// effcc: fuse criticality classes with domain awareness so critical
    /// loads get first claim on the fastest domains.
    CriticalityAware,
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Heuristic::DomainUnaware => f.write_str("domain-unaware"),
            Heuristic::OnlyDomainAware => f.write_str("only-domain-aware"),
            Heuristic::CriticalityAware => f.write_str("effcc"),
        }
    }
}

/// Placement configuration.
#[derive(Debug, Clone)]
pub struct PlaceConfig {
    /// Heuristic (Fig. 12 ablation).
    pub heuristic: Heuristic,
    /// RNG seed (placement is deterministic given the seed).
    pub seed: u64,
    /// Annealing effort: total moves ≈ `effort × cells`.
    pub effort: u32,
    /// PEs nothing may be placed on (failed resources, for degraded-mode
    /// spare-PE re-placement). The NUPEA preference order is otherwise
    /// unchanged: losing a fast-domain LS PE means the displaced memory
    /// instruction falls back to the next-best domain.
    pub avoid: Vec<PeId>,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        PlaceConfig {
            heuristic: Heuristic::CriticalityAware,
            seed: 0xC0FFEE,
            effort: 200,
            avoid: Vec::new(),
        }
    }
}

/// A completed placement: PE per DFG node (indexed by node index).
#[derive(Debug, Clone)]
pub struct Placement {
    /// PE hosting each DFG node.
    pub pe_of: Vec<PeId>,
    /// Final annealing cost.
    pub cost: f64,
}

/// Criticality weight in the throughput-reduction term.
fn crit_weight(heuristic: Heuristic, class: Option<Criticality>) -> f64 {
    match heuristic {
        Heuristic::DomainUnaware => 0.0,
        Heuristic::OnlyDomainAware => 1.0,
        Heuristic::CriticalityAware => match class.unwrap_or(Criticality::Other) {
            Criticality::Critical => 8.0,
            Criticality::InnerLoop => 1.5,
            Criticality::Other => 0.5,
        },
    }
}

/// Scale of the memory-domain term relative to wirelength. Strong enough
/// that one arbitration hop outweighs a cross-fabric data wire: fast-domain
/// residency is the point of NUPEA-aware PnR (§5).
const MEM_WEIGHT: f64 = 60.0;
/// Quadratic wirelength penalty (discourages the long paths that would
/// inflate the clock divider).
const WIRE_SQ: f64 = 0.15;
/// Timing wall: wires longer than one fabric cycle's reach would raise the
/// clock divider, so they cost steeply (static timing optimization, §4.2).
const WALL: f64 = 12.0;

struct Placer<'a> {
    fabric: &'a Fabric,
    netlist: &'a Netlist,
    cfg: &'a PlaceConfig,
    /// occupant node index per (pe, slot); usize::MAX = free.
    occ: Vec<[usize; SlotKind::COUNT]>,
    pe_of: Vec<u32>,
    /// nets touching each node.
    nets_of: Vec<Vec<u32>>,
    /// PEs barred from hosting anything (from `PlaceConfig::avoid`).
    avoided: Vec<bool>,
    rng: Xoshiro256,
}

const FREE: usize = usize::MAX;

impl<'a> Placer<'a> {
    fn new(fabric: &'a Fabric, netlist: &'a Netlist, cfg: &'a PlaceConfig) -> Self {
        let mut nets_of = vec![Vec::new(); netlist.len()];
        for (i, net) in netlist.nets.iter().enumerate() {
            nets_of[net.src.index()].push(i as u32);
            if net.dst != net.src {
                nets_of[net.dst.index()].push(i as u32);
            }
        }
        let mut avoided = vec![false; fabric.num_pes()];
        for pe in &cfg.avoid {
            if pe.index() < avoided.len() {
                avoided[pe.index()] = true;
            }
        }
        Placer {
            fabric,
            netlist,
            cfg,
            occ: vec![[FREE; SlotKind::COUNT]; fabric.num_pes()],
            pe_of: vec![u32::MAX; netlist.len()],
            nets_of,
            avoided,
            rng: Xoshiro256::seed_from_u64(cfg.seed),
        }
    }

    fn compatible(&self, cell: &Cell, pe: PeId) -> bool {
        !self.avoided[pe.index()] && (!cell.needs_ls || self.fabric.kind(pe) == PeKind::LoadStore)
    }

    fn seat(&mut self, node_idx: usize, pe: PeId) {
        let slot = self.netlist.cells[node_idx].slot.index();
        debug_assert_eq!(self.occ[pe.index()][slot], FREE);
        self.occ[pe.index()][slot] = node_idx;
        self.pe_of[node_idx] = pe.0;
    }

    /// Initial placement: memory first along the NUPEA preference order,
    /// then BFS through defs and uses.
    fn initial(&mut self) -> Result<(), PnrError> {
        check_capacity_avoiding(self.fabric, self.netlist, &self.cfg.avoid)?;
        // Memory cells in placement-priority order.
        let mut mem_cells: Vec<usize> = (0..self.netlist.len())
            .filter(|&i| self.netlist.cells[i].needs_ls)
            .collect();
        match self.cfg.heuristic {
            Heuristic::CriticalityAware => {
                mem_cells.sort_by_key(|&i| {
                    (
                        self.netlist.cells[i]
                            .criticality
                            .unwrap_or(Criticality::Other),
                        i,
                    )
                });
            }
            Heuristic::OnlyDomainAware | Heuristic::DomainUnaware => {}
        }
        // Target LS order. Avoided (failed) LS PEs drop out of the
        // preference walk, so their would-be occupants fall back to the
        // next-best domain.
        let mut ls_order = self.fabric.ls_pref_order();
        ls_order.retain(|pe| !self.avoided[pe.index()]);
        if self.cfg.heuristic == Heuristic::DomainUnaware {
            // No domain preference: shuffle deterministically.
            for i in (1..ls_order.len()).rev() {
                let j = self.rng.index(i + 1);
                ls_order.swap(i, j);
            }
        }
        let mut ls_iter = ls_order.into_iter();
        for idx in mem_cells {
            let pe = ls_iter
                .next()
                .ok_or_else(|| PnrError::Unplaceable("out of LS PEs".into()))?;
            self.seat(idx, pe);
        }

        // BFS the rest from the placed memory cells (or from node 0 for
        // memory-free graphs), placing each cell at the free compatible slot
        // nearest the centroid of its already-placed neighbours.
        let mut queue: VecDeque<usize> = (0..self.netlist.len())
            .filter(|&i| self.pe_of[i] != u32::MAX)
            .collect();
        let mut enqueued: Vec<bool> = (0..self.netlist.len())
            .map(|i| self.pe_of[i] != u32::MAX)
            .collect();
        loop {
            while let Some(cur) = queue.pop_front() {
                if self.pe_of[cur] == u32::MAX {
                    self.place_near_neighbours(cur)?;
                }
                for &ni in &self.nets_of[cur] {
                    let net = self.netlist.nets[ni as usize];
                    for nb in [net.src.index(), net.dst.index()] {
                        if !enqueued[nb] {
                            enqueued[nb] = true;
                            queue.push_back(nb);
                        }
                    }
                }
            }
            // Disconnected leftovers.
            match (0..self.netlist.len()).find(|&i| self.pe_of[i] == u32::MAX) {
                Some(i) => {
                    enqueued[i] = true;
                    queue.push_back(i);
                }
                None => break,
            }
        }
        Ok(())
    }

    /// Place one cell at the free compatible slot nearest its placed
    /// neighbours (or anywhere free if none are placed yet).
    fn place_near_neighbours(&mut self, idx: usize) -> Result<(), PnrError> {
        let cell = self.netlist.cells[idx];
        // Centroid of placed neighbours.
        let (mut sr, mut sc, mut n) = (0usize, 0usize, 0usize);
        for &ni in &self.nets_of[idx] {
            let net = self.netlist.nets[ni as usize];
            let other = if net.src.index() == idx {
                net.dst.index()
            } else {
                net.src.index()
            };
            if self.pe_of[other] != u32::MAX {
                let (r, c) = self.fabric.coords(PeId(self.pe_of[other]));
                sr += r;
                sc += c;
                n += 1;
            }
        }
        let target = match (sr.checked_div(n), sc.checked_div(n)) {
            (Some(r), Some(c)) => (r, c),
            _ => (self.fabric.rows() / 2, self.fabric.cols() / 2),
        };
        let slot = cell.slot.index();
        let mut best: Option<(u32, PeId)> = None;
        for pe in self.fabric.pes() {
            if self.occ[pe.index()][slot] != FREE || !self.compatible(&cell, pe) {
                continue;
            }
            let (r, c) = self.fabric.coords(pe);
            let d = (r.abs_diff(target.0) + c.abs_diff(target.1)) as u32;
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, pe));
            }
        }
        let (_, pe) =
            best.ok_or_else(|| PnrError::Unplaceable("no free compatible slot".into()))?;
        self.seat(idx, pe);
        Ok(())
    }

    fn net_cost(&self, ni: u32) -> f64 {
        let net = self.netlist.nets[ni as usize];
        let a = PeId(self.pe_of[net.src.index()]);
        let b = PeId(self.pe_of[net.dst.index()]);
        let d = f64::from(self.fabric.dist(a, b));
        let reach = f64::from(self.fabric.hops_per_fabric_cycle.max(1));
        let over = (d - reach).max(0.0);
        d + WIRE_SQ * d * d + WALL * over * over
    }

    fn mem_cost(&self, idx: usize) -> f64 {
        let cell = self.netlist.cells[idx];
        if !cell.needs_ls {
            return 0.0;
        }
        let w = crit_weight(self.cfg.heuristic, cell.criticality);
        if w == 0.0 {
            return 0.0;
        }
        let pe = PeId(self.pe_of[idx]);
        let hops = f64::from(self.fabric.mem_hops(pe));
        // Small column-proximity preference spreads LS instructions across
        // columns near memory (avoids overloading one row's arbiter, §5).
        let col = f64::from(self.fabric.memory_distance(pe)) * 0.05;
        MEM_WEIGHT * w * (hops + col)
    }

    fn node_cost(&self, idx: usize) -> f64 {
        let mut c = self.mem_cost(idx);
        for &ni in &self.nets_of[idx] {
            c += self.net_cost(ni);
        }
        c
    }

    fn total_cost(&self) -> f64 {
        let mut c = 0.0;
        for ni in 0..self.netlist.nets.len() as u32 {
            c += self.net_cost(ni);
        }
        for i in 0..self.netlist.len() {
            c += self.mem_cost(i);
        }
        c
    }

    /// Cost of the moved node(s) plus their incident nets (counted once per
    /// net even if both ends moved).
    fn local_cost(&self, a: usize, b: Option<usize>) -> f64 {
        let mut c = self.node_cost(a);
        if let Some(b) = b {
            c += self.mem_cost(b);
            for &ni in &self.nets_of[b] {
                let net = self.netlist.nets[ni as usize];
                // Skip nets already counted via `a`.
                if net.src.index() == a || net.dst.index() == a {
                    continue;
                }
                c += self.net_cost(ni);
            }
        }
        c
    }

    fn anneal(&mut self) {
        let ncells = self.netlist.len();
        if ncells < 2 {
            return;
        }
        let pes: Vec<PeId> = self
            .fabric
            .pes()
            .filter(|pe| !self.avoided[pe.index()])
            .collect();
        if pes.is_empty() {
            return;
        }
        // Estimate T0 from random-move deltas.
        let mut deltas = Vec::with_capacity(64);
        for _ in 0..64 {
            if let Some(mv) = self.propose(&pes) {
                let before = self.local_cost(mv.a, mv.b);
                self.apply(mv);
                let after = self.local_cost(mv.a, mv.b);
                self.apply(mv.inverse());
                deltas.push((after - before).abs());
            }
        }
        let mut t = deltas.iter().copied().fold(0.0, f64::max).max(1.0);
        let t_min = 0.002;
        let moves_per_temp = (ncells * 8).max(64);
        let total_budget = (self.cfg.effort as usize) * ncells;
        // Cooling rate chosen so the schedule reaches t_min just as the move
        // budget runs out (then a greedy polish pass below).
        let temps = (total_budget / moves_per_temp).max(2) as f64;
        let alpha = (t_min / t).powf(1.0 / temps).clamp(0.5, 0.98);
        let mut spent = 0usize;
        while t > t_min && spent < total_budget {
            for _ in 0..moves_per_temp {
                spent += 1;
                let Some(mv) = self.propose(&pes) else {
                    continue;
                };
                let before = self.local_cost(mv.a, mv.b);
                self.apply(mv);
                let after = self.local_cost(mv.a, mv.b);
                let delta = after - before;
                let accept = delta <= 0.0 || self.rng.chance((-delta / t).exp());
                if !accept {
                    self.apply(mv.inverse());
                }
            }
            t *= alpha;
        }
        // Greedy polish: accept only improvements.
        for _ in 0..moves_per_temp * 4 {
            let Some(mv) = self.propose(&pes) else {
                continue;
            };
            let before = self.local_cost(mv.a, mv.b);
            self.apply(mv);
            if self.local_cost(mv.a, mv.b) >= before {
                self.apply(mv.inverse());
            }
        }
    }

    /// Propose moving node `a` from `from` to `to` (swapping with occupant
    /// `b` if any). Returns `None` if the sampled move is incompatible.
    fn propose(&mut self, pes: &[PeId]) -> Option<Move> {
        let a = self.rng.index(self.netlist.len());
        let cell_a = self.netlist.cells[a];
        let to = pes[self.rng.index(pes.len())];
        let from = PeId(self.pe_of[a]);
        if from == to || !self.compatible(&cell_a, to) {
            return None;
        }
        let slot = cell_a.slot.index();
        let occupant = self.occ[to.index()][slot];
        let b = if occupant == FREE {
            None
        } else {
            // Swap: occupant must fit on a's PE.
            let cell_b = self.netlist.cells[occupant];
            if !self.compatible(&cell_b, from) {
                return None;
            }
            Some(occupant)
        };
        Some(Move { a, b, from, to })
    }

    /// Apply a move (or its inverse): `a` goes `from → to`; the occupant
    /// `b`, if any, takes `a`'s old seat.
    fn apply(&mut self, mv: Move) {
        let slot = self.netlist.cells[mv.a].slot.index();
        self.occ[mv.from.index()][slot] = FREE;
        if let Some(b) = mv.b {
            self.occ[mv.from.index()][slot] = b;
            self.pe_of[b] = mv.from.0;
        }
        self.occ[mv.to.index()][slot] = mv.a;
        self.pe_of[mv.a] = mv.to.0;
    }
}

/// An annealing move: node `a` relocates `from → to`, optionally swapping
/// with occupant `b`.
#[derive(Debug, Clone, Copy)]
struct Move {
    a: usize,
    b: Option<usize>,
    from: PeId,
    to: PeId,
}

impl Move {
    fn inverse(self) -> Move {
        Move {
            a: self.a,
            b: self.b,
            from: self.to,
            to: self.from,
        }
    }
}

/// Check that a netlist fits a fabric before any placement effort is
/// spent: every memory instruction needs its own load-store PE, and no
/// slot class (compute / control / endpoint) may exceed the PE count.
///
/// [`place`] calls this first, so callers never have to — it is public so
/// search layers (auto-parallelization, design-space exploration) can
/// reject oversized candidates without paying for an annealing run.
///
/// # Errors
///
/// Returns [`PnrError::Unplaceable`] naming the exhausted resource and the
/// need/have counts.
pub fn check_capacity(fabric: &Fabric, netlist: &Netlist) -> Result<(), PnrError> {
    check_capacity_avoiding(fabric, netlist, &[])
}

/// [`check_capacity`] against the fabric *minus* an avoid-set of failed
/// PEs — the capacity question degraded-mode recovery asks before paying
/// for a re-placement run.
///
/// # Errors
///
/// Returns [`PnrError::Unplaceable`] naming the exhausted resource and the
/// need/have counts (have = usable after the avoid-set).
pub fn check_capacity_avoiding(
    fabric: &Fabric,
    netlist: &Netlist,
    avoid: &[PeId],
) -> Result<(), PnrError> {
    // Duplicate-tolerant: count distinct avoided PEs only.
    let mut seen: Vec<PeId> = avoid.to_vec();
    seen.sort_unstable_by_key(|pe| pe.0);
    seen.dedup();
    let avoided_ls = seen
        .iter()
        .filter(|&&pe| fabric.kind(pe) == PeKind::LoadStore)
        .count();
    let avoided = seen.len();
    let ls_have = fabric.num_ls_pes().saturating_sub(avoided_ls);
    let pes_have = fabric.num_pes().saturating_sub(avoided);
    let fail = |what: &str, need: usize, have: usize| {
        Err(PnrError::Unplaceable(format!(
            "{what}: need {need}, fabric offers {have}"
        )))
    };
    if netlist.num_mem_cells > ls_have {
        return fail("memory instructions", netlist.num_mem_cells, ls_have);
    }
    if netlist.num_compute_cells > pes_have {
        return fail("compute instructions", netlist.num_compute_cells, pes_have);
    }
    if netlist.num_control_cells > pes_have {
        return fail("control instructions", netlist.num_control_cells, pes_have);
    }
    if netlist.num_aux_cells > pes_have {
        return fail("endpoint instructions", netlist.num_aux_cells, pes_have);
    }
    Ok(())
}

/// Run placement.
///
/// # Errors
///
/// Returns [`PnrError::Unplaceable`] when the netlist exceeds fabric
/// capacity — see [`check_capacity`] — (this is the signal the
/// auto-parallelizer uses to stop growing the parallelism degree).
pub fn place(fabric: &Fabric, netlist: &Netlist, cfg: &PlaceConfig) -> Result<Placement, PnrError> {
    let mut placer = Placer::new(fabric, netlist, cfg);
    placer.initial()?;
    placer.anneal();
    let cost = placer.total_cost();
    Ok(Placement {
        pe_of: placer.pe_of.iter().map(|&p| PeId(p)).collect(),
        cost,
    })
}

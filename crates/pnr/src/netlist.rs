//! Netlist extraction: turns a [`Dfg`] into placeable cells and routable nets.
//!
//! Monaco PEs host one compute instruction (arithmetic, or a memory
//! instruction on load-store PEs), one control-flow instruction on the
//! control FU, and one endpoint (param/sink) on the xdata FU (§4.1, Fig. 7).
//! Each DFG node therefore occupies one *slot* of a PE; wires between nodes
//! on the same PE cost nothing on the data NoC.

use nupea_ir::graph::{Criticality, Dfg, NodeId};
use std::fmt;

/// Which PE slot a cell occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// The compute FU: arithmetic anywhere; memory ops require an LS PE.
    Compute,
    /// The control-flow FU (steer/carry/invariant/select/mux).
    Control,
    /// The xdata FU (params and sinks).
    Aux,
}

impl SlotKind {
    /// Dense index for per-PE slot arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            SlotKind::Compute => 0,
            SlotKind::Control => 1,
            SlotKind::Aux => 2,
        }
    }

    /// Number of slot kinds.
    pub const COUNT: usize = 3;
}

impl fmt::Display for SlotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotKind::Compute => f.write_str("compute"),
            SlotKind::Control => f.write_str("control"),
            SlotKind::Aux => f.write_str("aux"),
        }
    }
}

/// A placeable cell derived from a DFG node.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// The DFG node this cell represents.
    pub node: NodeId,
    /// Slot the cell needs.
    pub slot: SlotKind,
    /// True if the cell must sit on a load-store PE.
    pub needs_ls: bool,
    /// Criticality class for memory cells (placement priority).
    pub criticality: Option<Criticality>,
}

/// A two-terminal net (one fanout branch of a DFG wire).
#[derive(Debug, Clone, Copy)]
pub struct Net {
    /// Driving node.
    pub src: NodeId,
    /// Driving output port (branches of one port share a routing tree).
    pub src_port: u8,
    /// Receiving node.
    pub dst: NodeId,
}

/// The netlist: cells plus nets, with summary counts.
#[derive(Debug, Clone)]
pub struct Netlist {
    /// Cells indexed by DFG node index.
    pub cells: Vec<Cell>,
    /// All two-terminal nets.
    pub nets: Vec<Net>,
    /// Number of cells needing an LS PE.
    pub num_mem_cells: usize,
    /// Number of control cells.
    pub num_control_cells: usize,
    /// Number of compute (arith + memory) cells.
    pub num_compute_cells: usize,
    /// Number of aux (endpoint) cells.
    pub num_aux_cells: usize,
}

impl Netlist {
    /// Build a netlist from a classified DFG.
    ///
    /// Call [`nupea_ir::criticality::classify`] first if criticality-aware
    /// placement is wanted; unclassified memory ops are treated as
    /// [`Criticality::Other`].
    pub fn from_dfg(dfg: &Dfg) -> Self {
        let mut cells = Vec::with_capacity(dfg.len());
        let mut num_mem_cells = 0;
        let mut num_control_cells = 0;
        let mut num_compute_cells = 0;
        let mut num_aux_cells = 0;
        for (id, node) in dfg.iter() {
            let slot = if node.op.is_control() {
                num_control_cells += 1;
                SlotKind::Control
            } else if node.op.is_endpoint() {
                num_aux_cells += 1;
                SlotKind::Aux
            } else {
                num_compute_cells += 1;
                SlotKind::Compute
            };
            let needs_ls = node.op.is_memory();
            if needs_ls {
                num_mem_cells += 1;
            }
            cells.push(Cell {
                node: id,
                slot,
                needs_ls,
                criticality: if needs_ls {
                    Some(node.meta.criticality.unwrap_or(Criticality::Other))
                } else {
                    None
                },
            });
        }
        let mut nets = Vec::with_capacity(dfg.num_edges());
        for id in dfg.node_ids() {
            for e in dfg.outs(id) {
                nets.push(Net {
                    src: id,
                    src_port: e.src_port,
                    dst: e.dst,
                });
            }
        }
        Netlist {
            cells,
            nets,
            num_mem_cells,
            num_control_cells,
            num_compute_cells,
            num_aux_cells,
        }
    }

    /// Total cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nupea_ir::op::{BinOpKind, Op};

    #[test]
    fn netlist_classifies_slots() {
        let mut g = Dfg::new("t");
        let (p, _) = g.add_param("a");
        let add = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(p, 0, add, 0);
        g.set_imm(add, 1, 1);
        let ld = g.add_node(Op::Load);
        g.connect(add, 0, ld, Op::LOAD_ADDR);
        let steer = g.add_node(Op::Steer(nupea_ir::op::SteerPolarity::OnTrue));
        g.set_imm(steer, 0, 1);
        g.connect(ld, 0, steer, 1);
        let (s, _) = g.add_sink("out");
        g.connect(steer, 0, s, 0);

        let nl = Netlist::from_dfg(&g);
        assert_eq!(nl.len(), 5);
        assert_eq!(nl.num_mem_cells, 1);
        assert_eq!(nl.num_control_cells, 1);
        assert_eq!(nl.num_compute_cells, 2); // add + load
        assert_eq!(nl.num_aux_cells, 2); // param + sink
        assert_eq!(nl.nets.len(), g.num_edges());
        assert!(nl.cells[ld.index()].needs_ls);
        assert_eq!(nl.cells[ld.index()].slot, SlotKind::Compute);
    }
}

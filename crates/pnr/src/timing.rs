//! Static timing analysis: clock-divider selection (§4.2).
//!
//! Monaco's data NoC is bufferless and statically routed, so the fabric
//! clock must cover the longest routed point-to-point path in the bitstream.
//! The compiler picks the smallest divider of the system clock that covers
//! that path. Our abstract timing model counts routed hops and divides by
//! the fabric's calibration constant `hops_per_fabric_cycle` (see DESIGN.md:
//! this stands in for the sign-off delay tables of the real flow).

use nupea_fabric::Fabric;

/// Timing result for a routed design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Longest routed path, in hops.
    pub max_hops: u32,
    /// Chosen fabric clock divider (≥ 1).
    pub divider: u32,
}

/// Compute the clock divider for a routed design.
pub fn analyze(fabric: &Fabric, max_hops: u32) -> Timing {
    let hpc = fabric.hops_per_fabric_cycle.max(1);
    let divider = max_hops.div_ceil(hpc).max(1);
    Timing { max_hops, divider }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divider_covers_longest_path() {
        let f = Fabric::monaco(12, 12, 3).unwrap();
        assert_eq!(f.hops_per_fabric_cycle, 7);
        assert_eq!(analyze(&f, 0).divider, 1);
        assert_eq!(analyze(&f, 7).divider, 1);
        assert_eq!(analyze(&f, 8).divider, 2);
        assert_eq!(analyze(&f, 14).divider, 2);
        assert_eq!(analyze(&f, 15).divider, 3);
    }
}

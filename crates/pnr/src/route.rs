//! Global routing over the data NoC with negotiated congestion
//! (PathFinder-style, as in effcc/VPR — §5 of the paper).
//!
//! The routing graph is the PE grid with one directed channel per cardinal
//! direction per tile edge, each with capacity `fabric.tracks`. Each DFG
//! output port is one physical signal: all of its fanout branches are routed
//! as a single **Steiner tree** (greedy nearest-terminal construction) so
//! trunk wires are shared, exactly as a broadcast wire on a real tracked
//! NoC would be.
//!
//! PathFinder iterates rip-up-and-reroute with history and present-sharing
//! costs until no channel is over capacity, or fails with the residual
//! overuse count — which the auto-parallelizer treats as "PnR failed".

use crate::netlist::Netlist;
use crate::PnrError;
use nupea_fabric::{Fabric, PeId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Result of routing.
#[derive(Debug, Clone)]
pub struct Routing {
    /// Per routed tree: (source PE, per-terminal path depth in hops).
    pub trees: Vec<RoutedTree>,
    /// Longest source→terminal path, in hops ("maximum path delay", Fig 17).
    pub max_hops: u32,
    /// Total channel segments occupied.
    pub wire_segments: usize,
    /// PathFinder iterations used.
    pub iterations: u32,
}

/// One routed broadcast tree.
#[derive(Debug, Clone)]
pub struct RoutedTree {
    /// Source PE.
    pub src: PeId,
    /// `(terminal PE, hops from source)` for each distinct destination PE.
    pub terminals: Vec<(PeId, u32)>,
}

/// Channel occupancy grid: 4 directed channels per PE (E, W, S, N).
struct Channels {
    cols: usize,
    rows: usize,
    occupancy: Vec<u16>,
    history: Vec<f32>,
    capacity: u16,
}

const DIRS: [(isize, isize); 4] = [(0, 1), (0, -1), (1, 0), (-1, 0)];

impl Channels {
    fn new(fabric: &Fabric) -> Self {
        Channels {
            cols: fabric.cols(),
            rows: fabric.rows(),
            occupancy: vec![0; fabric.num_pes() * 4],
            history: vec![0.0; fabric.num_pes() * 4],
            capacity: fabric.tracks.max(1) as u16,
        }
    }

    #[inline]
    fn edge_id(&self, node: usize, dir: usize) -> usize {
        node * 4 + dir
    }

    #[inline]
    fn step(&self, node: usize, dir: usize) -> Option<usize> {
        let (r, c) = (node / self.cols, node % self.cols);
        let (dr, dc) = DIRS[dir];
        let nr = r as isize + dr;
        let nc = c as isize + dc;
        if nr < 0 || nc < 0 || nr >= self.rows as isize || nc >= self.cols as isize {
            None
        } else {
            Some(nr as usize * self.cols + nc as usize)
        }
    }

    fn cost(&self, e: usize, pres_fac: f32) -> f32 {
        let over = (self.occupancy[e] + 1).saturating_sub(self.capacity);
        1.0 + self.history[e] + pres_fac * f32::from(over)
    }

    fn overused(&self) -> usize {
        self.occupancy
            .iter()
            .filter(|&&o| o > self.capacity)
            .count()
    }

    fn bump_history(&mut self) {
        for (o, h) in self.occupancy.iter().zip(self.history.iter_mut()) {
            if *o > self.capacity {
                *h += 0.4;
            }
        }
    }
}

/// A signal to route: source PE and its distinct destination PEs.
struct Signal {
    src: PeId,
    dsts: Vec<PeId>,
}

/// Route all placed signals.
///
/// # Errors
///
/// Returns [`PnrError::Unroutable`] if congestion cannot be resolved within
/// the iteration budget.
pub fn route(fabric: &Fabric, netlist: &Netlist, pe_of: &[PeId]) -> Result<Routing, PnrError> {
    // Group fanout branches by driving (node, output port).
    let mut groups: HashMap<(u32, u8), HashSet<u32>> = HashMap::new();
    for net in &netlist.nets {
        let src_pe = pe_of[net.src.index()];
        let dst_pe = pe_of[net.dst.index()];
        if src_pe != dst_pe {
            groups
                .entry((net.src.0, net.src_port))
                .or_default()
                .insert(dst_pe.0);
        }
    }
    let mut signals: Vec<Signal> = Vec::with_capacity(groups.len());
    let mut keys: Vec<(u32, u8)> = groups.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let src = pe_of[key.0 as usize];
        let mut dsts: Vec<PeId> = groups[&key].iter().map(|&d| PeId(d)).collect();
        // Nearest terminals first: short trunks get built early.
        dsts.sort_by_key(|&d| (fabric.dist(src, d), d.0));
        signals.push(Signal { src, dsts });
    }

    let mut ch = Channels::new(fabric);
    let mut routed: Vec<(Vec<usize>, RoutedTree)> = signals
        .iter()
        .map(|s| {
            (
                Vec::new(),
                RoutedTree {
                    src: s.src,
                    terminals: Vec::new(),
                },
            )
        })
        .collect();
    let max_iters = 90;
    let mut pres_fac = 0.6f32;

    for iter in 0..max_iters {
        for (i, sig) in signals.iter().enumerate() {
            for &e in &routed[i].0 {
                ch.occupancy[e] -= 1;
            }
            let (edges, tree) = route_tree(fabric, &ch, sig, pres_fac);
            for &e in &edges {
                ch.occupancy[e] += 1;
            }
            routed[i] = (edges, tree);
        }
        if ch.overused() == 0 {
            let max_hops = routed
                .iter()
                .flat_map(|(_, t)| t.terminals.iter().map(|&(_, h)| h))
                .max()
                .unwrap_or(0);
            let wire_segments = routed.iter().map(|(e, _)| e.len()).sum();
            return Ok(Routing {
                trees: routed.into_iter().map(|(_, t)| t).collect(),
                max_hops,
                wire_segments,
                iterations: iter + 1,
            });
        }
        ch.bump_history();
        pres_fac *= 1.5;
    }
    Err(PnrError::Unroutable {
        overused: ch.overused(),
    })
}

/// Greedy Steiner tree: terminals are attached one at a time via
/// multi-source Dijkstra from the current tree.
fn route_tree(
    fabric: &Fabric,
    ch: &Channels,
    sig: &Signal,
    pres_fac: f32,
) -> (Vec<usize>, RoutedTree) {
    let n = fabric.num_pes();
    let src_node = sig.src.index();
    // node -> depth (hops from source) for nodes in the tree.
    let mut tree_depth: HashMap<usize, u32> = HashMap::new();
    tree_depth.insert(src_node, 0);
    let mut tree_edges: Vec<usize> = Vec::new();
    let mut terminals = Vec::with_capacity(sig.dsts.len());

    let mut dist = vec![f32::INFINITY; n];
    let mut prev: Vec<(u32, u8)> = vec![(u32::MAX, 0); n];
    let mut touched: Vec<usize> = Vec::new();

    for &dst in &sig.dsts {
        let goal = dst.index();
        if let Some(&d) = tree_depth.get(&goal) {
            terminals.push((dst, d));
            continue;
        }
        // Multi-source Dijkstra seeded from every tree node.
        for &t in &touched {
            dist[t] = f32::INFINITY;
            prev[t] = (u32::MAX, 0);
        }
        touched.clear();
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        // Seed every tree node, biased by its depth so attachments prefer
        // shallow points — keeps source→sink delay (and thus the clock
        // divider) close to what a delay-aware track router would achieve.
        for (&node, &depth) in tree_depth.iter() {
            let seed_cost = 0.35 * f32::from(u16::try_from(depth).unwrap_or(u16::MAX));
            dist[node] = seed_cost;
            touched.push(node);
            heap.push(Reverse(((seed_cost * 1024.0) as u64, node as u32)));
        }
        while let Some(Reverse((dcost, u))) = heap.pop() {
            let u = u as usize;
            if (dcost as f32) / 1024.0 > dist[u] + 1e-3 {
                continue;
            }
            if u == goal {
                break;
            }
            for dir in 0..4 {
                let Some(v) = ch.step(u, dir) else { continue };
                let e = ch.edge_id(u, dir);
                let nd = dist[u] + ch.cost(e, pres_fac);
                if nd + 1e-6 < dist[v] {
                    if dist[v].is_infinite() {
                        touched.push(v);
                    }
                    dist[v] = nd;
                    prev[v] = (u as u32, dir as u8);
                    heap.push(Reverse(((nd * 1024.0) as u64, v as u32)));
                }
            }
        }
        // Walk back to the attachment point.
        let mut path: Vec<(usize, usize)> = Vec::new(); // (node, dir) edges
        let mut cur = goal;
        while prev[cur].0 != u32::MAX {
            let (p, dir) = prev[cur];
            path.push((p as usize, dir as usize));
            cur = p as usize;
        }
        debug_assert!(
            tree_depth.contains_key(&cur),
            "walkback must land on the tree"
        );
        let base_depth = tree_depth[&cur];
        path.reverse();
        let mut depth = base_depth;
        let mut node = cur;
        for &(p, dir) in &path {
            debug_assert_eq!(p, node);
            let e = ch.edge_id(p, dir);
            tree_edges.push(e);
            node = ch.step(p, dir).expect("in-bounds step");
            depth += 1;
            tree_depth.entry(node).or_insert(depth);
        }
        terminals.push((dst, tree_depth[&goal]));
    }

    (
        tree_edges,
        RoutedTree {
            src: sig.src,
            terminals,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use nupea_ir::graph::Dfg;
    use nupea_ir::op::{BinOpKind, Op};

    fn chain_graph(n: usize) -> Dfg {
        let mut g = Dfg::new("chain");
        let (p, _) = g.add_param("x");
        let mut prev = p;
        for _ in 0..n {
            let add = g.add_node(Op::BinOp(BinOpKind::Add));
            g.connect(prev, 0, add, 0);
            g.set_imm(add, 1, 1);
            prev = add;
        }
        let (s, _) = g.add_sink("out");
        g.connect(prev, 0, s, 0);
        g
    }

    #[test]
    fn routes_a_simple_chain_with_unit_hops() {
        let fabric = Fabric::monaco(8, 8, 2).unwrap();
        let g = chain_graph(6);
        let nl = Netlist::from_dfg(&g);
        let pe_of: Vec<PeId> = (0..nl.len()).map(|i| fabric.at(0, i % 8)).collect();
        let r = route(&fabric, &nl, &pe_of).unwrap();
        assert_eq!(r.max_hops, 1);
    }

    #[test]
    fn same_pe_nets_cost_nothing() {
        let fabric = Fabric::monaco(8, 8, 2).unwrap();
        let g = chain_graph(2);
        let nl = Netlist::from_dfg(&g);
        let pe_of: Vec<PeId> = vec![fabric.at(0, 0); nl.len()];
        let r = route(&fabric, &nl, &pe_of).unwrap();
        assert!(r.trees.is_empty());
        assert_eq!(r.max_hops, 0);
        assert_eq!(r.wire_segments, 0);
    }

    #[test]
    fn broadcast_fanout_shares_trunk_wires() {
        // One source broadcasting to 8 consumers in a line: tree wiring uses
        // at most 8 segments (a straight trunk), not 1+2+..+8.
        let fabric = Fabric::monaco(4, 12, 3).unwrap();
        let mut g = Dfg::new("bcast");
        let (p, _) = g.add_param("x");
        for i in 0..8 {
            let (s, _) = g.add_sink(format!("s{i}"));
            g.connect(p, 0, s, 0);
        }
        let nl = Netlist::from_dfg(&g);
        let mut pe_of = vec![fabric.at(0, 0); nl.len()];
        for (i, cell) in nl.cells.iter().enumerate() {
            if let Op::Sink(sid) = g.node(cell.node).op {
                pe_of[i] = fabric.at(0, 1 + sid.0 as usize);
            }
        }
        let r = route(&fabric, &nl, &pe_of).unwrap();
        assert_eq!(r.wire_segments, 8, "trunk is shared");
        assert_eq!(r.max_hops, 8);
    }

    #[test]
    fn congestion_forces_detours_or_fails() {
        let mut fabric = Fabric::monaco(4, 4, 1).unwrap();
        fabric.tracks = 1;
        let mut g = Dfg::new("parallel");
        // 6 distinct sources each feeding a sink across the fabric.
        let mut pairs = Vec::new();
        for i in 0..6 {
            let (p, _) = g.add_param(format!("p{i}"));
            let (s, _) = g.add_sink(format!("s{i}"));
            g.connect(p, 0, s, 0);
            pairs.push((p, s));
        }
        let nl = Netlist::from_dfg(&g);
        let mut pe_of = vec![fabric.at(0, 0); nl.len()];
        for (i, (p, s)) in pairs.iter().enumerate() {
            pe_of[p.index()] = fabric.at(i % 4, 0);
            pe_of[s.index()] = fabric.at((i + 1) % 4, 3);
        }
        match route(&fabric, &nl, &pe_of) {
            Ok(r) => assert!(r.max_hops >= 4, "detours expected, got {}", r.max_hops),
            Err(PnrError::Unroutable { overused }) => assert!(overused > 0),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}

//! Bitstream serialization: the artifact a PnR flow hands to the fabric.
//!
//! Monaco executes one *bitstream* at a time: a description of which PEs
//! are active, which instruction runs on each PE, and the chosen fabric
//! clock divider (§4.1). This module serializes a [`Placed`] design into a
//! stable, human-readable text format and parses it back, so compiled
//! kernels can be cached on disk, diffed in review, and loaded without
//! re-running the (seeded but expensive) annealer.

use crate::Placed;
use nupea_fabric::{Fabric, PeId};
use nupea_ir::graph::Dfg;
use std::fmt;

/// Format version emitted by [`write_bitstream`].
pub const FORMAT_VERSION: u32 = 1;

/// Errors from [`parse_bitstream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// Missing or wrong header line.
    BadHeader,
    /// Unsupported format version.
    BadVersion(String),
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A required field never appeared.
    MissingField(&'static str),
    /// Node assignments are not dense `0..n`.
    NonDenseNodes,
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::BadHeader => f.write_str("missing NUPEA-BITSTREAM header"),
            BitstreamError::BadVersion(v) => write!(f, "unsupported bitstream version {v}"),
            BitstreamError::BadLine { line, text } => {
                write!(f, "unparseable line {line}: {text:?}")
            }
            BitstreamError::MissingField(k) => write!(f, "missing field {k}"),
            BitstreamError::NonDenseNodes => f.write_str("node ids are not dense"),
        }
    }
}

impl std::error::Error for BitstreamError {}

/// A parsed bitstream: enough to re-create the simulator inputs for a
/// matching dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    /// Kernel name the bitstream was compiled from.
    pub name: String,
    /// Fabric geometry the placement targets (rows, cols).
    pub fabric_dims: (usize, usize),
    /// Chosen fabric clock divider.
    pub divider: u32,
    /// Longest routed path in hops.
    pub max_hops: u32,
    /// PE per DFG node, dense by node index.
    pub pe_of: Vec<PeId>,
}

impl Bitstream {
    /// True if this bitstream can drive `dfg` on `fabric`.
    pub fn matches(&self, dfg: &Dfg, fabric: &Fabric) -> bool {
        self.pe_of.len() == dfg.len()
            && self.fabric_dims == (fabric.rows(), fabric.cols())
            && self.pe_of.iter().all(|p| p.index() < fabric.num_pes())
    }
}

/// Serialize a placed design.
pub fn write_bitstream(dfg: &Dfg, fabric: &Fabric, placed: &Placed) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "NUPEA-BITSTREAM v{FORMAT_VERSION}");
    let _ = writeln!(s, "name {}", dfg.name());
    let _ = writeln!(
        s,
        "fabric {} {} {} tracks {}",
        fabric.topology(),
        fabric.rows(),
        fabric.cols(),
        fabric.tracks
    );
    let _ = writeln!(s, "divider {}", placed.timing.divider);
    let _ = writeln!(s, "maxhops {}", placed.timing.max_hops);
    for (id, node) in dfg.iter() {
        let _ = writeln!(
            s,
            "node {} pe {} op {}",
            id.0,
            placed.pe_of[id.index()].0,
            node.op
        );
    }
    let _ = writeln!(s, "end");
    s
}

/// Parse a bitstream produced by [`write_bitstream`].
///
/// # Errors
///
/// Returns [`BitstreamError`] on malformed input.
pub fn parse_bitstream(text: &str) -> Result<Bitstream, BitstreamError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(BitstreamError::BadHeader)?;
    let version = header
        .strip_prefix("NUPEA-BITSTREAM v")
        .ok_or(BitstreamError::BadHeader)?;
    if version.trim() != FORMAT_VERSION.to_string() {
        return Err(BitstreamError::BadVersion(version.trim().to_string()));
    }
    let mut name = None;
    let mut dims = None;
    let mut divider = None;
    let mut max_hops = None;
    let mut nodes: Vec<(u32, u32)> = Vec::new();
    for (i, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line == "end" {
            continue;
        }
        let bad = || BitstreamError::BadLine {
            line: i + 1,
            text: raw.to_string(),
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("name") => name = Some(parts.collect::<Vec<_>>().join(" ")),
            Some("fabric") => {
                let _topo = parts.next().ok_or_else(bad)?;
                let r: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let c: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                dims = Some((r, c));
            }
            Some("divider") => {
                divider = Some(parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?);
            }
            Some("maxhops") => {
                max_hops = Some(parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?);
            }
            Some("node") => {
                let idx: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let kw = parts.next().ok_or_else(bad)?;
                if kw != "pe" {
                    return Err(bad());
                }
                let pe: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                nodes.push((idx, pe));
            }
            _ => return Err(bad()),
        }
    }
    nodes.sort_unstable();
    if nodes
        .iter()
        .enumerate()
        .any(|(i, (idx, _))| *idx != i as u32)
    {
        return Err(BitstreamError::NonDenseNodes);
    }
    Ok(Bitstream {
        name: name.ok_or(BitstreamError::MissingField("name"))?,
        fabric_dims: dims.ok_or(BitstreamError::MissingField("fabric"))?,
        divider: divider.ok_or(BitstreamError::MissingField("divider"))?,
        max_hops: max_hops.ok_or(BitstreamError::MissingField("maxhops"))?,
        pe_of: nodes.into_iter().map(|(_, pe)| PeId(pe)).collect(),
    })
}

/// ASCII rendering of a placement: one character per PE. `.` is an idle
/// tile; `a`/`c`/`x` host arithmetic/control/endpoint instructions;
/// `m` is a memory instruction, capitalized (`M`) when the placed
/// instruction is criticality-class *Critical*. Columns run left to right
/// away from memory (memory is on the right edge).
pub fn render_placement(dfg: &Dfg, fabric: &Fabric, placed: &Placed) -> String {
    let mut grid = vec![b'.'; fabric.num_pes()];
    for (id, node) in dfg.iter() {
        let pe = placed.pe_of[id.index()].index();
        let ch = if node.op.is_memory() {
            if node.meta.criticality == Some(nupea_ir::graph::Criticality::Critical) {
                b'M'
            } else {
                b'm'
            }
        } else if node.op.is_arith() {
            b'a'
        } else if node.op.is_control() {
            b'c'
        } else {
            b'x'
        };
        // Priority: memory > arith > control > endpoint > empty.
        let rank = |c: u8| match c {
            b'M' => 5,
            b'm' => 4,
            b'a' => 3,
            b'c' => 2,
            b'x' => 1,
            _ => 0,
        };
        if rank(ch) > rank(grid[pe]) {
            grid[pe] = ch;
        }
    }
    let mut s = String::with_capacity(fabric.num_pes() + fabric.rows() * 2);
    for r in 0..fabric.rows() {
        for c in 0..fabric.cols() {
            s.push(grid[r * fabric.cols() + c] as char);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pnr, PnrConfig};
    use nupea_ir::op::{BinOpKind, CmpKind, Op, SteerPolarity};

    fn sample() -> (Dfg, Fabric, Placed) {
        let mut g = Dfg::new("bs-test");
        let (p, _) = g.add_param("head");
        let carry = g.add_node(Op::Carry);
        g.connect(p, 0, carry, Op::CARRY_INIT);
        let cond = g.add_node(Op::Cmp(CmpKind::Ne));
        g.connect(carry, 0, cond, 0);
        g.set_imm(cond, 1, -1);
        g.connect(cond, 0, carry, Op::CARRY_DECIDER);
        let body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.connect(cond, 0, body, 0);
        g.connect(carry, 0, body, 1);
        let ld = g.add_node(Op::Load);
        g.connect(body, 0, ld, Op::LOAD_ADDR);
        let nx = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(ld, 0, nx, 0);
        g.set_imm(nx, 1, 0);
        g.connect(nx, 0, carry, Op::CARRY_BACK);
        nupea_ir::criticality::classify(&mut g);
        let fabric = Fabric::monaco(8, 8, 3).unwrap();
        let placed = pnr(&g, &fabric, &PnrConfig::default()).unwrap();
        (g, fabric, placed)
    }

    #[test]
    fn bitstream_round_trips() {
        let (g, fabric, placed) = sample();
        let text = write_bitstream(&g, &fabric, &placed);
        let bs = parse_bitstream(&text).unwrap();
        assert_eq!(bs.name, "bs-test");
        assert_eq!(bs.fabric_dims, (8, 8));
        assert_eq!(bs.divider, placed.timing.divider);
        assert_eq!(bs.max_hops, placed.timing.max_hops);
        assert_eq!(bs.pe_of, placed.pe_of);
        assert!(bs.matches(&g, &fabric));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_bitstream(""), Err(BitstreamError::BadHeader));
        assert!(matches!(
            parse_bitstream("NUPEA-BITSTREAM v99\n"),
            Err(BitstreamError::BadVersion(_))
        ));
        let bad = "NUPEA-BITSTREAM v1\nname x\nfabric monaco 8 8 tracks 3\n\
                   divider 1\nmaxhops 2\nnode 0 pe zebra\nend\n";
        assert!(matches!(
            parse_bitstream(bad),
            Err(BitstreamError::BadLine { .. })
        ));
        let sparse = "NUPEA-BITSTREAM v1\nname x\nfabric monaco 8 8 tracks 3\n\
                      divider 1\nmaxhops 2\nnode 1 pe 0\nend\n";
        assert_eq!(parse_bitstream(sparse), Err(BitstreamError::NonDenseNodes));
        let missing = "NUPEA-BITSTREAM v1\nname x\ndivider 1\nmaxhops 2\nend\n";
        assert_eq!(
            parse_bitstream(missing),
            Err(BitstreamError::MissingField("fabric"))
        );
    }

    #[test]
    fn mismatched_graph_is_detected() {
        let (g, fabric, placed) = sample();
        let bs = parse_bitstream(&write_bitstream(&g, &fabric, &placed)).unwrap();
        let other = Dfg::new("other");
        assert!(!bs.matches(&other, &fabric));
        let bigger = Fabric::monaco(12, 12, 3).unwrap();
        assert!(!bs.matches(&g, &bigger));
    }

    #[test]
    fn render_shows_critical_memory() {
        let (g, fabric, placed) = sample();
        let map = render_placement(&g, &fabric, &placed);
        assert_eq!(map.lines().count(), 8);
        assert!(map.contains('M'), "critical load must render as M:\n{map}");
        assert!(map.contains('.'), "idle tiles expected");
    }
}

//! Multi-objective scoring and the incremental Pareto frontier.
//!
//! Objectives are all minimized: completion cycles, total energy
//! ([`EnergyBreakdown::total`](nupea_sim::EnergyBreakdown::total)), and
//! active PE count. The frontier is maintained incrementally — each
//! insert removes newly dominated points — and kept sorted by
//! `(cycles, energy, pes, hash)` so reports are byte-identical for a
//! given candidate set regardless of evaluation order.

use crate::space::Candidate;

/// One evaluated point's objective vector (all minimized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Completion time in system cycles.
    pub cycles: u64,
    /// Total energy across components (arbitrary units).
    pub energy: f64,
    /// PEs that fired at least once.
    pub pes: usize,
}

impl Score {
    /// Strict Pareto dominance: no worse on every objective, strictly
    /// better on at least one.
    #[must_use]
    pub fn dominates(&self, other: &Score) -> bool {
        let no_worse =
            self.cycles <= other.cycles && self.energy <= other.energy && self.pes <= other.pes;
        let better =
            self.cycles < other.cycles || self.energy < other.energy || self.pes < other.pes;
        no_worse && better
    }
}

/// A frontier entry: the candidate, its score, and its stable config hash.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The configuration.
    pub candidate: Candidate,
    /// Its objectives.
    pub score: Score,
    /// Stable config hash (journal key).
    pub hash: u64,
}

/// An incrementally maintained set of mutually non-dominated points.
#[derive(Debug, Clone, Default)]
pub struct ParetoFrontier {
    points: Vec<FrontierPoint>,
}

impl ParetoFrontier {
    /// An empty frontier.
    #[must_use]
    pub fn new() -> Self {
        ParetoFrontier::default()
    }

    /// Offer a point. Returns `true` if it joined the frontier (it was not
    /// dominated); any points it dominates are evicted. A point with a
    /// hash already on the frontier is ignored (re-evaluations from the
    /// journal must not duplicate entries).
    pub fn insert(&mut self, p: FrontierPoint) -> bool {
        if self.points.iter().any(|q| q.hash == p.hash) {
            return false;
        }
        if self.points.iter().any(|q| q.score.dominates(&p.score)) {
            return false;
        }
        self.points.retain(|q| !p.score.dominates(&q.score));
        self.points.push(p);
        self.points.sort_by(|a, b| {
            a.score
                .cycles
                .cmp(&b.score.cycles)
                .then(a.score.energy.total_cmp(&b.score.energy))
                .then(a.score.pes.cmp(&b.score.pes))
                .then(a.hash.cmp(&b.hash))
        });
        true
    }

    /// The frontier, sorted by `(cycles, energy, pes, hash)`.
    #[must_use]
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// Number of frontier points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The reported-points property: every pair is mutually non-dominated.
    /// Cheap enough to assert in tests and debug builds.
    #[must_use]
    pub fn is_non_dominated(&self) -> bool {
        self.points.iter().enumerate().all(|(i, a)| {
            self.points
                .iter()
                .enumerate()
                .all(|(j, b)| i == j || !a.score.dominates(&b.score))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nupea_pnr::Heuristic;

    fn point(hash: u64, cycles: u64, energy: f64, pes: usize) -> FrontierPoint {
        FrontierPoint {
            candidate: Candidate {
                domain_cols: 3,
                d0_cols: 3,
                cache_words: 1024,
                banks: 32,
                divider: Some(2),
                heuristic: Heuristic::CriticalityAware,
                place_seed: hash,
            },
            score: Score {
                cycles,
                energy,
                pes,
            },
            hash,
        }
    }

    #[test]
    fn dominance_is_strict() {
        let a = Score {
            cycles: 10,
            energy: 5.0,
            pes: 3,
        };
        assert!(!a.dominates(&a), "no self-domination");
        assert!(a.dominates(&Score {
            cycles: 10,
            energy: 5.0,
            pes: 4
        }));
        assert!(!a.dominates(&Score {
            cycles: 9,
            energy: 6.0,
            pes: 3
        }));
    }

    #[test]
    fn insert_evicts_dominated_and_rejects_dominated() {
        let mut f = ParetoFrontier::new();
        assert!(f.insert(point(1, 100, 10.0, 5)));
        assert!(f.insert(point(2, 50, 20.0, 5)), "trade-off joins");
        assert!(!f.insert(point(3, 120, 10.0, 5)), "dominated rejected");
        assert!(f.insert(point(4, 40, 5.0, 4)), "dominator joins");
        // 4 dominates both 1 and 2.
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].hash, 4);
        assert!(f.is_non_dominated());
    }

    #[test]
    fn duplicate_hash_is_ignored() {
        let mut f = ParetoFrontier::new();
        assert!(f.insert(point(1, 100, 10.0, 5)));
        assert!(!f.insert(point(1, 90, 9.0, 4)), "same hash re-offered");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn order_is_deterministic() {
        let mut a = ParetoFrontier::new();
        let mut b = ParetoFrontier::new();
        let pts = [
            point(1, 100, 1.0, 9),
            point(2, 90, 2.0, 9),
            point(3, 80, 3.0, 9),
        ];
        for p in &pts {
            a.insert(p.clone());
        }
        for p in pts.iter().rev() {
            b.insert(p.clone());
        }
        assert_eq!(a.points(), b.points(), "insertion order must not matter");
    }
}

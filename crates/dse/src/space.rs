//! The joint hardware/compiler configuration space.
//!
//! A [`Candidate`] is one point: fabric domain geometry (domain width and
//! direct-port share, the paper's fourth contribution), cache capacity,
//! bank count, clock divider, placement heuristic, and placement seed.
//! A [`SearchSpace`] is the finite menu of values per axis; strategies
//! enumerate, sample, or perturb within it.

use nupea::{SystemConfig, Workload};
use nupea_fabric::Fabric;
use nupea_pnr::Heuristic;
use nupea_rng::Xoshiro256;

/// One point in the joint hardware/compiler space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Columns per far NUPEA domain (`monaco_with_domains`).
    pub domain_cols: usize,
    /// Direct-port (near-memory) LS columns.
    pub d0_cols: usize,
    /// Shared-cache capacity in words.
    pub cache_words: usize,
    /// Cache bank count.
    pub banks: usize,
    /// Fixed fabric clock divider (`None` = PnR-derived).
    pub divider: Option<u64>,
    /// Placement heuristic (Fig. 12 axis).
    pub heuristic: Heuristic,
    /// Placement seed (annealing perturbs this axis).
    pub place_seed: u64,
}

impl Candidate {
    /// Canonical key string: every field in a fixed order. Stable across
    /// runs and releases — the journal's config hash is computed over it.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "dc{};d0{};cw{};bk{};dv{};h{};s{}",
            self.domain_cols,
            self.d0_cols,
            self.cache_words,
            self.banks,
            self.divider.map_or_else(|| "pnr".into(), |d| d.to_string()),
            self.heuristic,
            self.place_seed,
        )
    }

    /// Materialize the hardware half of the candidate as a
    /// [`SystemConfig`] on the space's fabric dimensions.
    ///
    /// # Errors
    ///
    /// Returns the fabric's own error string for degenerate geometry
    /// (e.g. more direct-port columns than the fabric has) — the engine
    /// records these as infeasible points without simulating.
    pub fn system(&self, space: &SearchSpace) -> Result<SystemConfig, String> {
        let fabric = Fabric::monaco_with_domains(
            space.rows,
            space.cols,
            space.tracks,
            self.d0_cols,
            self.domain_cols,
        )
        .map_err(|e| e.to_string())?;
        let mut sys = SystemConfig::with_fabric(fabric);
        sys.mem.cache_words = self.cache_words;
        sys.mem.banks = self.banks;
        sys.divider_override = self.divider;
        sys.seed = self.place_seed;
        sys.effort = space.effort;
        Ok(sys)
    }
}

/// Stable 64-bit FNV-1a hash of a workload + candidate pair: the journal
/// key. Depends only on the canonical key string, never on memory layout.
#[must_use]
pub fn config_hash(workload: &Workload, candidate: &Candidate) -> u64 {
    fnv1a(format!("{};par{};{}", workload.name, workload.par, candidate.key()).as_bytes())
}

/// 64-bit FNV-1a — the same stable hash the journals, checksum layer,
/// and shard partitioner use (hosted in [`nupea::jsonl`]).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    nupea::jsonl::fnv1a(bytes)
}

/// The finite menu of values per axis, over a fixed fabric outline.
///
/// [`SearchSpace::default`] covers the paper's sensitivity axes on the
/// 12×12 Monaco: domain widths 2–4, direct-port shares 1–6 (Monaco ships
/// 3/3), three cache sizes around the shipping 64 K words, and all three
/// placement heuristics.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Fabric rows.
    pub rows: usize,
    /// Fabric columns.
    pub cols: usize,
    /// Data-NoC tracks.
    pub tracks: u32,
    /// Annealing effort for every candidate's compiles.
    pub effort: u32,
    /// Menu: columns per far domain.
    pub domain_cols: Vec<usize>,
    /// Menu: direct-port LS columns.
    pub d0_cols: Vec<usize>,
    /// Menu: cache capacities (words).
    pub cache_words: Vec<usize>,
    /// Menu: bank counts.
    pub banks: Vec<usize>,
    /// Menu: divider overrides.
    pub dividers: Vec<Option<u64>>,
    /// Menu: placement heuristics.
    pub heuristics: Vec<Heuristic>,
    /// Menu: placement seeds (grid/random draw from here; annealing may
    /// leave it and mutate seeds freely).
    pub place_seeds: Vec<u64>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            rows: 12,
            cols: 12,
            tracks: Fabric::DEFAULT_TRACKS,
            effort: 200,
            domain_cols: vec![2, 3, 4],
            d0_cols: vec![1, 2, 3, 4, 6],
            cache_words: vec![16 * 1024, 64 * 1024, 256 * 1024],
            banks: vec![32],
            dividers: vec![Some(2)],
            heuristics: vec![
                Heuristic::DomainUnaware,
                Heuristic::OnlyDomainAware,
                Heuristic::CriticalityAware,
            ],
            place_seeds: vec![0xC0FFEE],
        }
    }
}

impl SearchSpace {
    /// Number of grid points (the product of all axis lengths).
    #[must_use]
    pub fn len(&self) -> usize {
        self.domain_cols.len()
            * self.d0_cols.len()
            * self.cache_words.len()
            * self.banks.len()
            * self.dividers.len()
            * self.heuristics.len()
            * self.place_seeds.len()
    }

    /// Whether any axis is empty (no candidates exist).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th grid point in mixed-radix order (heuristic varies
    /// fastest, domain width slowest), for `i < len()`.
    #[must_use]
    pub fn nth(&self, i: usize) -> Candidate {
        assert!(i < self.len(), "grid index out of range");
        let mut rem = i;
        let mut pick = |axis_len: usize| {
            let idx = rem % axis_len;
            rem /= axis_len;
            idx
        };
        let heuristic = self.heuristics[pick(self.heuristics.len())];
        let place_seed = self.place_seeds[pick(self.place_seeds.len())];
        let divider = self.dividers[pick(self.dividers.len())];
        let banks = self.banks[pick(self.banks.len())];
        let cache_words = self.cache_words[pick(self.cache_words.len())];
        let d0_cols = self.d0_cols[pick(self.d0_cols.len())];
        let domain_cols = self.domain_cols[pick(self.domain_cols.len())];
        Candidate {
            domain_cols,
            d0_cols,
            cache_words,
            banks,
            divider,
            heuristic,
            place_seed,
        }
    }

    /// A uniform random grid point.
    #[must_use]
    pub fn sample(&self, rng: &mut Xoshiro256) -> Candidate {
        self.nth(rng.index(self.len()))
    }

    /// A neighbour of `c`: one axis nudged to an adjacent menu value, or —
    /// for the placement-seed axis — a fresh random seed. This is the
    /// annealer's move set: placement perturbations plus single-knob
    /// hardware changes.
    #[must_use]
    pub fn neighbor(&self, c: &Candidate, rng: &mut Xoshiro256) -> Candidate {
        let mut n = c.clone();
        // Axis 6 is the seed axis; others nudge within their menu.
        match rng.index(7) {
            0 => n.domain_cols = nudge(&self.domain_cols, c.domain_cols, rng),
            1 => n.d0_cols = nudge(&self.d0_cols, c.d0_cols, rng),
            2 => n.cache_words = nudge(&self.cache_words, c.cache_words, rng),
            3 => n.banks = nudge(&self.banks, c.banks, rng),
            4 => n.divider = nudge(&self.dividers, c.divider, rng),
            5 => n.heuristic = nudge(&self.heuristics, c.heuristic, rng),
            _ => n.place_seed = rng.next_u64(),
        }
        n
    }
}

/// Move to an adjacent value on one axis menu (falling back to a random
/// menu entry when the current value is not on the menu, as can happen for
/// annealer-mutated seeds).
fn nudge<T: Copy + PartialEq>(menu: &[T], current: T, rng: &mut Xoshiro256) -> T {
    let Some(pos) = menu.iter().position(|&v| v == current) else {
        return menu[rng.index(menu.len())];
    };
    let next = if menu.len() == 1 {
        pos
    } else if pos == 0 {
        1
    } else if pos == menu.len() - 1 {
        pos - 1
    } else if rng.next_bool() {
        pos + 1
    } else {
        pos - 1
    };
    menu[next]
}

/// Parse a heuristic from its stable display label (the inverse of
/// `Heuristic`'s `Display`); used by the journal reader.
#[must_use]
pub fn heuristic_from_label(s: &str) -> Option<Heuristic> {
    Some(match s {
        "domain-unaware" => Heuristic::DomainUnaware,
        "only-domain-aware" => Heuristic::OnlyDomainAware,
        "effcc" => Heuristic::CriticalityAware,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumerates_every_point_exactly_once() {
        let space = SearchSpace::default();
        let mut keys: Vec<String> = (0..space.len()).map(|i| space.nth(i).key()).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "grid points must be unique");
        assert_eq!(n, 3 * 5 * 3 * 3, "default space size");
    }

    #[test]
    fn hash_is_stable_and_key_sensitive() {
        let space = SearchSpace::default();
        let a = space.nth(0);
        let b = space.nth(1);
        assert_ne!(fnv1a(a.key().as_bytes()), fnv1a(b.key().as_bytes()));
        // Golden: the journal format relies on this hash never changing.
        assert_eq!(fnv1a(b"dse"), 0xca50_1918_f423_aa9f, "FNV-1a drifted");
    }

    #[test]
    fn neighbor_stays_in_space_and_moves_one_axis() {
        let space = SearchSpace::default();
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut c = space.sample(&mut rng);
        for _ in 0..200 {
            let n = space.neighbor(&c, &mut rng);
            let mut moved = 0;
            moved += usize::from(n.domain_cols != c.domain_cols);
            moved += usize::from(n.d0_cols != c.d0_cols);
            moved += usize::from(n.cache_words != c.cache_words);
            moved += usize::from(n.banks != c.banks);
            moved += usize::from(n.divider != c.divider);
            moved += usize::from(n.heuristic != c.heuristic);
            moved += usize::from(n.place_seed != c.place_seed);
            assert!(moved <= 1, "a move changes at most one axis");
            assert!(space.domain_cols.contains(&n.domain_cols));
            assert!(space.heuristics.contains(&n.heuristic));
            c = n;
        }
    }

    #[test]
    fn candidate_materializes_system_knobs() {
        let space = SearchSpace::default();
        let c = Candidate {
            domain_cols: 3,
            d0_cols: 3,
            cache_words: 16 * 1024,
            banks: 16,
            divider: None,
            heuristic: Heuristic::CriticalityAware,
            place_seed: 42,
        };
        let sys = c.system(&space).unwrap();
        assert_eq!(sys.mem.cache_words, 16 * 1024);
        assert_eq!(sys.mem.banks, 16);
        assert_eq!(sys.divider_override, None);
        assert_eq!(sys.seed, 42);
        // Degenerate geometry is a typed refusal, not a panic.
        let bad = Candidate { d0_cols: 99, ..c };
        assert!(bad.system(&space).is_err());
    }

    #[test]
    fn heuristic_labels_round_trip() {
        for h in [
            Heuristic::DomainUnaware,
            Heuristic::OnlyDomainAware,
            Heuristic::CriticalityAware,
        ] {
            assert_eq!(heuristic_from_label(&h.to_string()), Some(h));
        }
        assert_eq!(heuristic_from_label("nope"), None);
    }
}

//! Seeded design-space exploration for NUPEA systems.
//!
//! The paper fixes one design point per figure — Monaco's 12×12 fabric
//! with a 3-column direct-port region, three far domains, a 64 K-word
//! cache — and sweeps one axis at a time by hand. This crate turns those
//! sweeps into a subsystem: a [`SearchSpace`] describes the joint
//! hardware/compiler space (domain geometry, cache capacity and banking,
//! clock divider, placement heuristic and seed), pluggable
//! [`SearchStrategy`] implementations walk it, and a [`DseEngine`] scores
//! every candidate through the parallel [`ExperimentRunner`] pipeline
//! (shared compile cache, scoped threads, budget enforcement).
//!
//! Three properties the subsystem maintains:
//!
//! - **Determinism.** All randomness flows through
//!   [`nupea_rng::Xoshiro256`]; a search's trajectory — and its rendered
//!   report — is a pure function of its seed.
//! - **Non-domination.** Reported [`ParetoFrontier`] points are mutually
//!   non-dominated on (cycles, energy, active PEs); dominated points are
//!   evicted incrementally on insert.
//! - **Resumability.** Every evaluation is appended to a JSONL
//!   [`Journal`] keyed by a stable FNV-1a config hash and cycle budget.
//!   Killing a search and re-running it replays journal entries instead
//!   of re-simulating; a completed search resumes with zero simulator
//!   invocations.
//!
//! ```no_run
//! use nupea_dse::{DseConfig, DseEngine, GridSearch, SearchSpace};
//! use nupea::{all_workloads, Scale};
//!
//! let mut engine = DseEngine::new(SearchSpace::default(), DseConfig::default());
//! let spmspv = all_workloads().into_iter().find(|w| w.name == "spmspv").unwrap();
//! engine.add_workload(spmspv.build_default(Scale::Test));
//! let report = engine.run(&mut GridSearch::new(8)).unwrap();
//! println!("{}", report.render());
//! ```
//!
//! [`ExperimentRunner`]: nupea::ExperimentRunner

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod journal;
pub mod pareto;
pub mod space;
pub mod strategy;

pub use engine::{
    candidate_shard, merge_journal_lines, merge_sharded, run_shard_worker, run_sharded, DseConfig,
    DseEngine, DseReport, HalvingConfig, WorkloadFrontier,
};
pub use journal::{Budget, Journal, JournalEntry, Outcome};
pub use pareto::{FrontierPoint, ParetoFrontier, Score};
pub use space::{config_hash, fnv1a, heuristic_from_label, Candidate, SearchSpace};
pub use strategy::{Annealing, Evaluation, GridSearch, RandomSearch, SearchStrategy};

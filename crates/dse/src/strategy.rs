//! Pluggable seeded search strategies.
//!
//! A strategy proposes batches of [`Candidate`]s; the engine evaluates
//! each batch (journal first, simulator second) and hands the accumulated
//! [`Evaluation`] history back for the next round. An empty batch ends
//! the search. All randomness comes from [`nupea_rng::Xoshiro256`], so a
//! strategy's trajectory is a pure function of its seed and the history —
//! which is what makes killed searches resumable and same-seed runs
//! byte-identical.

use crate::pareto::Score;
use crate::space::{Candidate, SearchSpace};
use nupea_rng::Xoshiro256;

/// One evaluated candidate: per-workload scores in workload declaration
/// order (`None` = that workload failed on this configuration).
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The configuration that was evaluated.
    pub candidate: Candidate,
    /// `(workload name, score)` per declared workload.
    pub scores: Vec<(String, Option<Score>)>,
    /// Whether the scores come from a full-budget evaluation. Candidates
    /// eliminated at a capped successive-halving rung carry their capped
    /// measurements here with `full = false`; only full evaluations feed
    /// the Pareto frontier.
    pub full: bool,
}

impl Evaluation {
    /// Scalar fitness for single-objective strategies: geometric-mean
    /// cycles across workloads. `None` when any workload failed — an
    /// infeasible or deadlocked configuration is never "fit".
    #[must_use]
    pub fn mean_cycles(&self) -> Option<f64> {
        let mut log_sum = 0.0;
        for (_, s) in &self.scores {
            let s = s.as_ref()?;
            log_sum += (s.cycles.max(1) as f64).ln();
        }
        if self.scores.is_empty() {
            return None;
        }
        Some((log_sum / self.scores.len() as f64).exp())
    }
}

/// A seeded search strategy over a [`SearchSpace`].
pub trait SearchStrategy {
    /// Stable strategy name (journal/report metadata).
    fn name(&self) -> &'static str;

    /// Propose the next batch of candidates given everything evaluated so
    /// far. Returning an empty batch ends the search.
    fn next_batch(&mut self, space: &SearchSpace, history: &[Evaluation]) -> Vec<Candidate>;
}

/// Exhaustive enumeration of the whole grid, in `SearchSpace::nth` order,
/// `batch` points at a time.
#[derive(Debug)]
pub struct GridSearch {
    cursor: usize,
    batch: usize,
}

impl GridSearch {
    /// Enumerate the full grid in batches of `batch` (min 1).
    #[must_use]
    pub fn new(batch: usize) -> Self {
        GridSearch {
            cursor: 0,
            batch: batch.max(1),
        }
    }
}

impl SearchStrategy for GridSearch {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn next_batch(&mut self, space: &SearchSpace, _history: &[Evaluation]) -> Vec<Candidate> {
        let end = (self.cursor + self.batch).min(space.len());
        let batch = (self.cursor..end).map(|i| space.nth(i)).collect();
        self.cursor = end;
        batch
    }
}

/// Seeded uniform random sampling of `samples` grid points. Draws are
/// independent, so repeats are possible by design — repeated evaluations
/// hit the journal instead of the simulator.
#[derive(Debug)]
pub struct RandomSearch {
    rng: Xoshiro256,
    remaining: usize,
    batch: usize,
}

impl RandomSearch {
    /// Sample `samples` points with the given seed, `batch` at a time.
    #[must_use]
    pub fn new(seed: u64, samples: usize, batch: usize) -> Self {
        RandomSearch {
            rng: Xoshiro256::seed_from_u64(seed),
            remaining: samples,
            batch: batch.max(1),
        }
    }
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn next_batch(&mut self, space: &SearchSpace, _history: &[Evaluation]) -> Vec<Candidate> {
        let n = self.batch.min(self.remaining);
        self.remaining -= n;
        (0..n).map(|_| space.sample(&mut self.rng)).collect()
    }
}

/// Simulated annealing over placement perturbations and single-knob
/// hardware moves (see [`SearchSpace::neighbor`]). Proposes one candidate
/// per round; accepts by the Metropolis rule on geometric-mean cycles.
#[derive(Debug)]
pub struct Annealing {
    rng: Xoshiro256,
    steps: usize,
    issued: usize,
    temp: f64,
    cooling: f64,
    /// The accepted incumbent and its fitness.
    current: Option<(Candidate, f64)>,
    /// The proposal whose evaluation we are waiting for.
    pending: Option<Candidate>,
}

impl Annealing {
    /// A `steps`-proposal annealer. Temperature starts at `temp` (in
    /// relative cycle units) and decays by `cooling` per step.
    #[must_use]
    pub fn new(seed: u64, steps: usize, temp: f64, cooling: f64) -> Self {
        Annealing {
            rng: Xoshiro256::seed_from_u64(seed),
            steps,
            issued: 0,
            temp: temp.max(1e-9),
            cooling: cooling.clamp(0.0, 1.0),
            current: None,
            pending: None,
        }
    }

    /// A reasonable default schedule for `steps` proposals.
    #[must_use]
    pub fn with_defaults(seed: u64, steps: usize) -> Self {
        Annealing::new(seed, steps, 0.2, 0.95)
    }
}

impl SearchStrategy for Annealing {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn next_batch(&mut self, space: &SearchSpace, history: &[Evaluation]) -> Vec<Candidate> {
        // Digest the previous proposal's evaluation.
        if let Some(pending) = self.pending.take() {
            let eval = history
                .iter()
                .rev()
                .find(|e| e.candidate == pending)
                .expect("the engine evaluates every proposed candidate");
            if let Some(fit) = eval.mean_cycles() {
                let accept = match &self.current {
                    None => true,
                    Some((_, cur)) => {
                        // Metropolis on relative regression.
                        fit <= *cur || {
                            let delta = (fit - cur) / cur.max(1.0);
                            self.rng.chance((-delta / self.temp).exp())
                        }
                    }
                };
                if accept {
                    self.current = Some((pending, fit));
                }
            }
            // Failed proposals are always rejected.
            self.temp *= self.cooling;
        }
        if self.issued >= self.steps {
            return Vec::new();
        }
        self.issued += 1;
        let proposal = match &self.current {
            None => space.sample(&mut self.rng),
            Some((c, _)) => space.neighbor(c, &mut self.rng),
        };
        self.pending = Some(proposal.clone());
        vec![proposal]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(c: &Candidate, cycles: Option<u64>) -> Evaluation {
        Evaluation {
            candidate: c.clone(),
            scores: vec![(
                "w".to_string(),
                cycles.map(|cy| Score {
                    cycles: cy,
                    energy: 1.0,
                    pes: 1,
                }),
            )],
            full: true,
        }
    }

    #[test]
    fn grid_covers_space_exactly() {
        let space = SearchSpace::default();
        let mut g = GridSearch::new(7);
        let mut seen = Vec::new();
        loop {
            let batch = g.next_batch(&space, &[]);
            if batch.is_empty() {
                break;
            }
            seen.extend(batch.into_iter().map(|c| c.key()));
        }
        assert_eq!(seen.len(), space.len());
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), space.len());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let space = SearchSpace::default();
        let draw = |seed| {
            let mut r = RandomSearch::new(seed, 10, 3);
            let mut all = Vec::new();
            loop {
                let b = r.next_batch(&space, &[]);
                if b.is_empty() {
                    break;
                }
                all.extend(b.into_iter().map(|c| c.key()));
            }
            all
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6), "different seeds explore differently");
    }

    #[test]
    fn annealing_walks_and_terminates() {
        let space = SearchSpace::default();
        let mut a = Annealing::with_defaults(3, 12);
        let mut history: Vec<Evaluation> = Vec::new();
        let mut proposals = 0;
        loop {
            let batch = a.next_batch(&space, &history);
            if batch.is_empty() {
                break;
            }
            assert_eq!(batch.len(), 1, "annealing is sequential");
            proposals += 1;
            // Deterministic synthetic objective; some proposals "fail".
            let c = &batch[0];
            let cycles = if c.banks == 0 {
                None
            } else {
                Some(1000 + (c.domain_cols as u64) * 17 + (c.place_seed % 97))
            };
            history.push(eval(c, cycles));
        }
        assert_eq!(proposals, 12);
        assert!(a.current.is_some(), "an incumbent was accepted");
    }

    #[test]
    fn mean_cycles_fails_closed() {
        let space = SearchSpace::default();
        let c = space.nth(0);
        assert!(eval(&c, None).mean_cycles().is_none());
        let e = Evaluation {
            candidate: c,
            scores: vec![
                (
                    "a".into(),
                    Some(Score {
                        cycles: 100,
                        energy: 1.0,
                        pes: 1,
                    }),
                ),
                ("b".into(), None),
            ],
            full: true,
        };
        assert!(e.mean_cycles().is_none(), "any failure poisons fitness");
    }
}

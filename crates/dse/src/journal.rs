//! The append-only JSONL search journal.
//!
//! Every completed evaluation — one `(workload, candidate, budget)`
//! triple — is appended as one flat JSON object keyed by the stable
//! config hash of [`crate::space::config_hash`]. On open, existing lines
//! are replayed into an in-memory index, so a killed search resumes with
//! zero re-simulation and repeated evaluations (random-search repeats,
//! annealer revisits) hit the cache. Unparseable lines — e.g. a final
//! line truncated by a kill — are skipped, not fatal.
//!
//! The format is hand-rolled (the workspace is dependency-free) and
//! deliberately flat; a line looks like:
//!
//! ```json
//! {"hash":123,"workload":"spmspv","budget":"b10000","domain_cols":3,
//!  "d0_cols":3,"cache_words":65536,"banks":32,"divider":2,
//!  "heuristic":"effcc","place_seed":12648430,"cycles":4242,
//!  "energy":123.5,"pes":61,"error":null}
//! ```

use crate::pareto::Score;
use crate::space::{heuristic_from_label, Candidate};
use nupea::jsonl::{self, JsonlFile};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// The budget rung an entry was evaluated at: a successive-halving rung's
/// cycle cap, or the uncapped full run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Budget {
    /// Capped at this many system cycles.
    Capped(u64),
    /// The full (default runaway cap) evaluation.
    Full,
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Budget::Capped(b) => write!(f, "b{b}"),
            Budget::Full => f.write_str("full"),
        }
    }
}

impl Budget {
    fn parse(s: &str) -> Option<Budget> {
        if s == "full" {
            return Some(Budget::Full);
        }
        s.strip_prefix('b')?.parse().ok().map(Budget::Capped)
    }
}

/// How an evaluation ended: a score, or a stable kebab-case failure label
/// (`RunErrorKind::label`, or `"invalid-config"` for degenerate fabric
/// geometry rejected before simulation).
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Completed and validated; objectives recorded.
    Done(Score),
    /// Failed; the label classifies why.
    Failed(String),
}

/// One journal line.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Stable config hash of `(workload, candidate)`.
    pub hash: u64,
    /// Workload name.
    pub workload: String,
    /// Budget rung.
    pub budget: Budget,
    /// The configuration.
    pub candidate: Candidate,
    /// Result.
    pub outcome: Outcome,
}

impl JournalEntry {
    /// Serialize as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let c = &self.candidate;
        let (cycles, energy, pes, error) = match &self.outcome {
            Outcome::Done(s) => (
                s.cycles.to_string(),
                jsonl::format_f64(s.energy),
                s.pes.to_string(),
                "null".to_string(),
            ),
            Outcome::Failed(label) => (
                "null".into(),
                "null".into(),
                "null".into(),
                format!("\"{label}\""),
            ),
        };
        format!(
            "{{\"hash\":{},\"workload\":\"{}\",\"budget\":\"{}\",\
             \"domain_cols\":{},\"d0_cols\":{},\"cache_words\":{},\"banks\":{},\
             \"divider\":{},\"heuristic\":\"{}\",\"place_seed\":{},\
             \"cycles\":{cycles},\"energy\":{energy},\"pes\":{pes},\"error\":{error}}}",
            self.hash,
            self.workload,
            self.budget,
            c.domain_cols,
            c.d0_cols,
            c.cache_words,
            c.banks,
            c.divider
                .map_or_else(|| "null".to_string(), |d| d.to_string()),
            c.heuristic,
            c.place_seed,
        )
    }

    /// Parse one line; `None` for anything malformed (corrupt tails are
    /// skipped on resume).
    #[must_use]
    pub fn parse_line(line: &str) -> Option<JournalEntry> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        let num = |k: &str| jsonl::u64_field(line, k);
        let opt_num = |k: &str| -> Option<Option<u64>> {
            match jsonl::field(line, k)? {
                v if v == "null" => Some(None),
                v => v.parse().ok().map(Some),
            }
        };
        let candidate = Candidate {
            domain_cols: num("domain_cols")? as usize,
            d0_cols: num("d0_cols")? as usize,
            cache_words: num("cache_words")? as usize,
            banks: num("banks")? as usize,
            divider: opt_num("divider")?,
            heuristic: heuristic_from_label(&jsonl::string_field(line, "heuristic")?)?,
            place_seed: num("place_seed")?,
        };
        let outcome = match jsonl::field(line, "error")? {
            v if v == "null" => Outcome::Done(Score {
                cycles: num("cycles")?,
                energy: jsonl::field(line, "energy")?.parse().ok()?,
                pes: num("pes")? as usize,
            }),
            _ => Outcome::Failed(jsonl::string_field(line, "error")?),
        };
        Some(JournalEntry {
            hash: num("hash")?,
            workload: jsonl::string_field(line, "workload")?,
            budget: Budget::parse(&jsonl::string_field(line, "budget")?)?,
            candidate,
            outcome,
        })
    }
}

/// The journal: an on-disk JSONL file (optional) plus the in-memory index
/// keyed by `(hash, budget)`. Torn-tail detection and append repair live
/// in the shared [`nupea::jsonl`] layer.
#[derive(Debug)]
pub struct Journal {
    file: JsonlFile,
    index: HashMap<(u64, Budget), JournalEntry>,
    /// When set, every recorded line is tagged `(shard, epoch)` and
    /// checksummed (see [`nupea::shard::tag_line`]) so a sharded merge
    /// can fence out stale writers.
    tag: Option<(u32, u64)>,
    /// Lines replayed from disk at open (resume accounting).
    pub replayed: usize,
    /// Lines skipped as unparseable at open.
    pub skipped: usize,
}

impl Journal {
    /// A purely in-memory journal (tests, throwaway searches).
    #[must_use]
    pub fn in_memory() -> Self {
        Journal {
            file: JsonlFile::in_memory(),
            index: HashMap::new(),
            tag: None,
            replayed: 0,
            skipped: 0,
        }
    }

    /// Tag every future [`Journal::record`] with `(shard, epoch)` plus a
    /// checksum — required for journals participating in a sharded run,
    /// where the merge must prefer the highest-epoch record per key.
    #[must_use]
    pub fn with_tag(mut self, shard: u32, epoch: u64) -> Self {
        self.tag = Some((shard, epoch));
        self
    }

    /// An in-memory journal indexed from already-merged lines (see
    /// [`nupea::shard::merge_by_key`]); unparseable lines are counted in
    /// `skipped`.
    #[must_use]
    pub fn from_lines(lines: impl IntoIterator<Item = String>) -> Self {
        let mut j = Journal::in_memory();
        for line in lines {
            match JournalEntry::parse_line(&line) {
                Some(e) => {
                    j.index.insert((e.hash, e.budget.clone()), e);
                    j.replayed += 1;
                }
                None => j.skipped += 1,
            }
        }
        j
    }

    /// Open (or create) an on-disk journal, replaying existing entries.
    /// The parent directory is created on demand.
    ///
    /// # Errors
    ///
    /// I/O errors creating the parent directory or reading the file.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let (file, lines) = JsonlFile::open(path)?;
        let mut j = Journal {
            file,
            index: HashMap::new(),
            tag: None,
            replayed: 0,
            skipped: 0,
        };
        for line in &lines {
            match JournalEntry::parse_line(line) {
                Some(e) => {
                    j.index.insert((e.hash, e.budget.clone()), e);
                    j.replayed += 1;
                }
                None => j.skipped += 1,
            }
        }
        Ok(j)
    }

    /// The on-disk path, if any.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.file.path()
    }

    /// Look up a completed evaluation.
    #[must_use]
    pub fn lookup(&self, hash: u64, budget: &Budget) -> Option<&JournalEntry> {
        self.index.get(&(hash, budget.clone()))
    }

    /// Record an evaluation: appends one line (fsync'd to the line level
    /// by `write_all` + newline so a kill loses at most the final line)
    /// and indexes it.
    ///
    /// # Errors
    ///
    /// I/O errors appending to the file.
    pub fn record(&mut self, entry: JournalEntry) -> io::Result<()> {
        let line = match self.tag {
            Some((shard, epoch)) => nupea::shard::tag_line(&entry.to_line(), shard, epoch),
            None => entry.to_line(),
        };
        self.file.append(&line)?;
        self.index.insert((entry.hash, entry.budget.clone()), entry);
        Ok(())
    }

    /// Flush appended records to stable storage (fsync) — a sharded
    /// worker calls this before marking its shard done.
    ///
    /// # Errors
    ///
    /// I/O errors syncing the file.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync()
    }

    /// Number of indexed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the journal is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nupea_pnr::Heuristic;
    use std::io::Write as _;

    fn entry(hash: u64, budget: Budget, outcome: Outcome) -> JournalEntry {
        JournalEntry {
            hash,
            workload: "spmspv".into(),
            budget,
            candidate: Candidate {
                domain_cols: 3,
                d0_cols: 2,
                cache_words: 65536,
                banks: 32,
                divider: Some(2),
                heuristic: Heuristic::CriticalityAware,
                place_seed: 0xC0FFEE,
            },
            outcome,
        }
    }

    #[test]
    fn lines_round_trip() {
        for (b, o) in [
            (
                Budget::Full,
                Outcome::Done(Score {
                    cycles: 4242,
                    energy: 123.5,
                    pes: 61,
                }),
            ),
            (
                Budget::Capped(10_000),
                Outcome::Failed("cycle-limit".into()),
            ),
        ] {
            let e = entry(7, b, o);
            let line = e.to_line();
            assert_eq!(JournalEntry::parse_line(&line), Some(e), "{line}");
        }
    }

    #[test]
    fn pnr_derived_divider_round_trips_as_null() {
        let mut e = entry(
            9,
            Budget::Full,
            Outcome::Done(Score {
                cycles: 1,
                energy: 0.5,
                pes: 2,
            }),
        );
        e.candidate.divider = None;
        let line = e.to_line();
        assert!(line.contains("\"divider\":null"), "{line}");
        assert_eq!(JournalEntry::parse_line(&line), Some(e));
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        assert_eq!(JournalEntry::parse_line(""), None);
        assert_eq!(JournalEntry::parse_line("{\"hash\":12"), None);
        assert_eq!(JournalEntry::parse_line("not json at all"), None);
        // Truncated mid-field.
        let full = entry(
            1,
            Budget::Full,
            Outcome::Done(Score {
                cycles: 10,
                energy: 1.0,
                pes: 1,
            }),
        )
        .to_line();
        assert_eq!(JournalEntry::parse_line(&full[..full.len() / 2]), None);
    }

    #[test]
    fn disk_journal_replays_and_skips_garbage() {
        let dir = std::env::temp_dir().join(format!("nupea-dse-journal-{}", std::process::id()));
        let path = dir.join("j.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let mut j = Journal::open(&path).unwrap();
            j.record(entry(
                1,
                Budget::Capped(100),
                Outcome::Done(Score {
                    cycles: 10,
                    energy: 1.0,
                    pes: 1,
                }),
            ))
            .unwrap();
            j.record(entry(1, Budget::Full, Outcome::Failed("deadlock".into())))
                .unwrap();
        }
        // Simulate a kill mid-append: garbage tail.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{\"hash\":99,\"workl")
            .unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replayed, 2);
        assert_eq!(j.skipped, 1);
        assert!(j.lookup(1, &Budget::Capped(100)).is_some());
        assert!(j.lookup(1, &Budget::Full).is_some());
        assert!(j.lookup(1, &Budget::Capped(999)).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}

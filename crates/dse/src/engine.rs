//! The search engine: strategy rounds → successive-halving rungs →
//! journal-first evaluation → parallel simulation through
//! [`ExperimentRunner`] → per-workload Pareto frontiers.

use crate::journal::{Budget, Journal, JournalEntry, Outcome};
use crate::pareto::{FrontierPoint, ParetoFrontier, Score};
use crate::space::{config_hash, fnv1a, Candidate, SearchSpace};
use crate::strategy::{Evaluation, GridSearch, SearchStrategy};
use nupea::shard::{self, ShardOptions, WorkerStats};
use nupea::{ExperimentRunner, RunRecord, SystemHandle, Workload};
use nupea_sim::MemoryModel;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Successive-halving schedule: candidates first run under
/// `base_budget` system cycles; the best `1/eta` fraction of each rung is
/// promoted to an `eta×` larger budget, for `rungs` capped rungs, and
/// rung survivors get the full (uncapped) evaluation. Eliminated
/// candidates keep their capped measurements in the history but never
/// reach the frontier.
#[derive(Debug, Clone)]
pub struct HalvingConfig {
    /// Cycle budget of the first rung.
    pub base_budget: u64,
    /// Promotion fraction denominator and budget multiplier (≥ 2).
    pub eta: usize,
    /// Number of capped rungs before the full evaluation.
    pub rungs: usize,
}

impl HalvingConfig {
    /// A sensible default: one 10k-cycle screening rung, promote the top
    /// third.
    #[must_use]
    pub fn screening() -> Self {
        HalvingConfig {
            base_budget: 10_000,
            eta: 3,
            rungs: 1,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Worker threads for compile/simulate fan-out (`0` = available
    /// parallelism).
    pub threads: usize,
    /// Memory model every candidate is scored under.
    pub model: MemoryModel,
    /// Optional early stopping.
    pub halving: Option<HalvingConfig>,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            threads: 0,
            model: MemoryModel::Nupea,
            halving: None,
        }
    }
}

/// One workload's Pareto frontier.
#[derive(Debug, Clone)]
pub struct WorkloadFrontier {
    /// Workload name.
    pub workload: String,
    /// Its frontier.
    pub frontier: ParetoFrontier,
}

/// The result of a search.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DseReport {
    /// Strategy name.
    pub strategy: &'static str,
    /// Per-workload frontiers, in workload declaration order.
    pub frontiers: Vec<WorkloadFrontier>,
    /// Every evaluation, in engine order.
    pub history: Vec<Evaluation>,
    /// `(workload, candidate, budget)` evaluations requested.
    pub evaluated: usize,
    /// Evaluations that went to the simulator (journal misses).
    pub simulated: usize,
    /// Evaluations served from the journal.
    pub journal_hits: usize,
}

impl DseReport {
    /// Deterministic JSON export: same seed + same space ⇒ byte-identical
    /// output, independent of thread count or resume state.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"strategy\":\"{}\",\"evaluated\":{},\"frontiers\":[",
            self.strategy, self.evaluated
        );
        for (fi, wf) in self.frontiers.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"workload\":\"{}\",\"points\":[", wf.workload));
            for (pi, p) in wf.frontier.points().iter().enumerate() {
                if pi > 0 {
                    out.push(',');
                }
                let c = &p.candidate;
                out.push_str(&format!(
                    "{{\"hash\":{},\"domain_cols\":{},\"d0_cols\":{},\
                     \"cache_words\":{},\"banks\":{},\"divider\":{},\
                     \"heuristic\":\"{}\",\"place_seed\":{},\"cycles\":{},\
                     \"energy\":{},\"pes\":{}}}",
                    p.hash,
                    c.domain_cols,
                    c.d0_cols,
                    c.cache_words,
                    c.banks,
                    c.divider
                        .map_or_else(|| "null".to_string(), |d| d.to_string()),
                    c.heuristic,
                    c.place_seed,
                    p.score.cycles,
                    p.score.energy,
                    p.score.pes,
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Render the frontiers as human-readable tables.
    #[must_use]
    pub fn render(&self) -> String {
        let headers: Vec<String> = ["cycles", "energy", "pes", "heuristic", "config"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let mut out = String::new();
        for wf in &self.frontiers {
            let rows: Vec<(String, Vec<String>)> = wf
                .frontier
                .points()
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    (
                        format!("#{i}"),
                        vec![
                            p.score.cycles.to_string(),
                            format!("{:.1}", p.score.energy),
                            p.score.pes.to_string(),
                            p.candidate.heuristic.to_string(),
                            p.candidate.key(),
                        ],
                    )
                })
                .collect();
            out.push_str(&nupea::experiments::render_table(
                &format!(
                    "Pareto frontier — {} ({} points, {} evaluated, {} simulated, {} journal hits)",
                    wf.workload,
                    wf.frontier.len(),
                    self.evaluated,
                    self.simulated,
                    self.journal_hits
                ),
                &headers,
                &rows,
            ));
            out.push('\n');
        }
        out
    }

    /// Best full-budget cycle count achieved for `workload` by candidates
    /// using `heuristic` — the Fig. 12 comparison the CLI `--check` makes.
    #[must_use]
    pub fn best_cycles(&self, workload: &str, heuristic: nupea::Heuristic) -> Option<u64> {
        self.history
            .iter()
            .filter(|e| e.full && e.candidate.heuristic == heuristic)
            .filter_map(|e| {
                e.scores
                    .iter()
                    .find(|(w, _)| w == workload)
                    .and_then(|(_, s)| s.as_ref().map(|s| s.cycles))
            })
            .min()
    }
}

/// The DSE engine: owns the space, the workloads under optimization, the
/// journal, and the evaluation counters.
#[derive(Debug)]
pub struct DseEngine {
    space: SearchSpace,
    cfg: DseConfig,
    workloads: Vec<Arc<Workload>>,
    journal: Journal,
    evaluated: usize,
    simulated: usize,
    journal_hits: usize,
}

impl DseEngine {
    /// An engine over `space` with an in-memory journal.
    #[must_use]
    pub fn new(space: SearchSpace, cfg: DseConfig) -> Self {
        DseEngine {
            space,
            cfg,
            workloads: Vec::new(),
            journal: Journal::in_memory(),
            evaluated: 0,
            simulated: 0,
            journal_hits: 0,
        }
    }

    /// Attach a journal (typically [`Journal::open`] on a JSONL path) so
    /// the search records every evaluation and resumes past ones.
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }

    /// Add a workload to optimize for. With several workloads, scalar
    /// strategies optimize geometric-mean cycles; frontiers stay
    /// per-workload.
    pub fn add_workload(&mut self, w: Workload) -> &mut Self {
        self.workloads.push(Arc::new(w));
        self
    }

    /// The search space.
    #[must_use]
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Evaluations that actually went to the simulator so far (a resumed
    /// search that replays completely keeps this at zero).
    #[must_use]
    pub fn simulated(&self) -> usize {
        self.simulated
    }

    /// Run a strategy to completion.
    ///
    /// # Errors
    ///
    /// Journal I/O errors. Candidate failures (infeasible geometry, PnR
    /// overflow, deadlock, budget exhaustion) are recorded outcomes, not
    /// errors.
    ///
    /// # Panics
    ///
    /// Panics if no workload was added.
    pub fn run(&mut self, strategy: &mut dyn SearchStrategy) -> io::Result<DseReport> {
        assert!(
            !self.workloads.is_empty(),
            "add_workload before running a search"
        );
        let mut history: Vec<Evaluation> = Vec::new();
        let mut frontiers: Vec<WorkloadFrontier> = self
            .workloads
            .iter()
            .map(|w| WorkloadFrontier {
                workload: w.name.to_string(),
                frontier: ParetoFrontier::new(),
            })
            .collect();
        loop {
            let batch = strategy.next_batch(&self.space, &history);
            if batch.is_empty() {
                break;
            }
            let evals = self.evaluate_batch(&batch)?;
            for e in &evals {
                if e.full {
                    for (wi, (_, score)) in e.scores.iter().enumerate() {
                        if let Some(score) = score {
                            frontiers[wi].frontier.insert(FrontierPoint {
                                candidate: e.candidate.clone(),
                                score: *score,
                                hash: config_hash(&self.workloads[wi], &e.candidate),
                            });
                        }
                    }
                }
            }
            history.extend(evals);
        }
        debug_assert!(frontiers.iter().all(|f| f.frontier.is_non_dominated()));
        Ok(DseReport {
            strategy: strategy.name(),
            frontiers,
            history,
            evaluated: self.evaluated,
            simulated: self.simulated,
            journal_hits: self.journal_hits,
        })
    }

    /// Re-simulate every frontier point with tracing on, writing one
    /// Chrome trace JSON per point into `dir` (PR 3 plumbing). Returns the
    /// recorded trace paths.
    ///
    /// # Errors
    ///
    /// Journal I/O never applies here; only trace-directory I/O inside the
    /// runner, which degrades to records without paths — so this only
    /// returns the paths that were actually written.
    #[must_use]
    pub fn emit_frontier_traces(&self, report: &DseReport, dir: &Path) -> Vec<String> {
        let mut runner = ExperimentRunner::new();
        runner.threads(self.cfg.threads).trace_dir(dir);
        let mut any = false;
        for (wi, wf) in report.frontiers.iter().enumerate() {
            let wh = runner.shared_workload(Arc::clone(&self.workloads[wi]));
            for p in wf.frontier.points() {
                if let Ok(sys) = p.candidate.system(&self.space) {
                    let sh = runner.system(sys);
                    runner.point(wh, sh, p.candidate.heuristic, self.cfg.model);
                    any = true;
                }
            }
        }
        if !any {
            return Vec::new();
        }
        runner
            .run()
            .records
            .iter()
            .filter_map(|r| r.trace_path.clone())
            .collect()
    }

    /// Evaluate candidates at the full (uncapped) budget, bypassing the
    /// halving schedule — the sharded worker's unit of work, one
    /// journal-first pass per candidate.
    ///
    /// # Errors
    ///
    /// Journal I/O errors; candidate failures are recorded outcomes.
    pub fn evaluate_full(&mut self, cands: &[Candidate]) -> io::Result<Vec<Evaluation>> {
        self.eval_rung(cands, &Budget::Full, true)
    }

    /// Flush the engine's journal to stable storage.
    ///
    /// # Errors
    ///
    /// I/O errors syncing the journal file.
    pub fn sync_journal(&self) -> io::Result<()> {
        self.journal.sync()
    }

    /// Evaluate one strategy batch, applying the halving schedule.
    fn evaluate_batch(&mut self, batch: &[Candidate]) -> io::Result<Vec<Evaluation>> {
        let halving = match &self.cfg.halving {
            Some(h) if batch.len() > 1 && h.rungs > 0 => h.clone(),
            _ => return self.eval_rung(batch, &Budget::Full, true),
        };
        let mut out: Vec<Option<Evaluation>> = vec![None; batch.len()];
        let mut alive: Vec<usize> = (0..batch.len()).collect();
        let mut budget = halving.base_budget.max(1);
        for _ in 0..halving.rungs {
            if alive.len() <= 1 {
                break;
            }
            let cands: Vec<Candidate> = alive.iter().map(|&i| batch[i].clone()).collect();
            let evals = self.eval_rung(&cands, &Budget::Capped(budget), false)?;
            // Rank survivors: successes by fitness then key (deterministic
            // under ties); failures — including budget exhaustion — drop.
            let mut ranked: Vec<(f64, String, usize)> = Vec::new();
            for (j, e) in evals.iter().enumerate() {
                if let Some(fit) = e.mean_cycles() {
                    ranked.push((fit, e.candidate.key(), alive[j]));
                }
                out[alive[j]] = Some(evals[j].clone());
            }
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let keep = alive.len().div_ceil(halving.eta).max(1);
            alive = ranked.into_iter().take(keep).map(|(_, _, i)| i).collect();
            budget = budget.saturating_mul(halving.eta.max(2) as u64);
        }
        if !alive.is_empty() {
            let cands: Vec<Candidate> = alive.iter().map(|&i| batch[i].clone()).collect();
            let evals = self.eval_rung(&cands, &Budget::Full, true)?;
            for (j, e) in evals.into_iter().enumerate() {
                out[alive[j]] = Some(e);
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("every candidate evaluated at some rung"))
            .collect())
    }

    /// Evaluate candidates at one budget: journal first, then one
    /// [`ExperimentRunner`] sweep for the misses (scoped-thread parallel
    /// compile + simulate with compile-artifact sharing), recording every
    /// fresh result to the journal.
    fn eval_rung(
        &mut self,
        cands: &[Candidate],
        budget: &Budget,
        full: bool,
    ) -> io::Result<Vec<Evaluation>> {
        self.evaluated += cands.len() * self.workloads.len();

        // Partition into journal hits and to-simulate tasks, deduping
        // repeated candidates within the batch by config hash.
        struct Task {
            cand: usize,
            workload: usize,
            hash: u64,
        }
        let mut to_sim: Vec<Task> = Vec::new();
        let mut pending: Vec<u64> = Vec::new();
        for (ci, c) in cands.iter().enumerate() {
            for (wi, w) in self.workloads.iter().enumerate() {
                let hash = config_hash(w, c);
                if self.journal.lookup(hash, budget).is_some() {
                    self.journal_hits += 1;
                } else if pending.contains(&hash) {
                    // A repeat within this batch: served from the journal
                    // once the first occurrence's record lands.
                    self.journal_hits += 1;
                } else {
                    pending.push(hash);
                    to_sim.push(Task {
                        cand: ci,
                        workload: wi,
                        hash,
                    });
                }
            }
        }

        if !to_sim.is_empty() {
            let mut runner = ExperimentRunner::new();
            runner.threads(self.cfg.threads);
            if let Budget::Capped(b) = budget {
                // Strict rung budget: exhausting it is elimination, so the
                // runner's one-shot retry is disabled here.
                runner.cycle_budget(*b).retry_factor(1);
            }
            let whandles: Vec<_> = self
                .workloads
                .iter()
                .map(|w| runner.shared_workload(Arc::clone(w)))
                .collect();
            // One registered system per unique hardware configuration.
            let mut sys_of: HashMap<String, Result<SystemHandle, String>> = HashMap::new();
            let mut pointed: Vec<Task> = Vec::new();
            for t in to_sim {
                let c = &cands[t.cand];
                let sys = sys_of
                    .entry(c.key())
                    .or_insert_with(|| c.system(&self.space).map(|s| runner.system(s)));
                match sys {
                    Err(_) => {
                        // Degenerate geometry: recorded as infeasible, never
                        // simulated.
                        self.journal.record(JournalEntry {
                            hash: t.hash,
                            workload: self.workloads[t.workload].name.to_string(),
                            budget: budget.clone(),
                            candidate: c.clone(),
                            outcome: Outcome::Failed("invalid-config".into()),
                        })?;
                    }
                    Ok(sh) => {
                        runner.point(whandles[t.workload], *sh, c.heuristic, self.cfg.model);
                        pointed.push(t);
                    }
                }
            }
            if !pointed.is_empty() {
                let report = runner.run();
                self.simulated += pointed.len();
                for (rec, t) in report.records.iter().zip(&pointed) {
                    self.journal.record(JournalEntry {
                        hash: t.hash,
                        workload: self.workloads[t.workload].name.to_string(),
                        budget: budget.clone(),
                        candidate: cands[t.cand].clone(),
                        outcome: outcome_of(rec),
                    })?;
                }
            }
        }

        // Assemble evaluations — everything is now in the journal.
        Ok(cands
            .iter()
            .map(|c| Evaluation {
                candidate: c.clone(),
                scores: self
                    .workloads
                    .iter()
                    .map(|w| {
                        let e = self
                            .journal
                            .lookup(config_hash(w, c), budget)
                            .expect("recorded above");
                        let score = match &e.outcome {
                            Outcome::Done(s) => Some(*s),
                            Outcome::Failed(_) => None,
                        };
                        (w.name.to_string(), score)
                    })
                    .collect(),
                full,
            })
            .collect())
    }
}

/// The stable shard a candidate belongs to: FNV-1a over its canonical
/// key, mod the shard count — a pure function of the candidate, so every
/// worker partitions the grid identically. Sharding is by candidate
/// (each work item evaluates the candidate against *all* workloads),
/// keeping the compile cache effective within a shard.
#[must_use]
pub fn candidate_shard(c: &Candidate, shards: u32) -> u32 {
    shard::shard_of(fnv1a(c.key().as_bytes()), shards)
}

/// Run one worker against a sharded full-grid search rooted at `dir`
/// (coordination journal plus one tagged result journal per shard — see
/// [`nupea::shard`]). Any number of processes may call this concurrently
/// with the same `(space, cfg, workloads)` and distinct
/// [`ShardOptions::worker`] ids; each returns once every shard is done.
/// Sharded searches always evaluate the full grid at [`Budget::Full`] —
/// the halving schedule is a cross-candidate ranking and is ignored here
/// (its capped rungs would couple shards to each other).
///
/// Within a shard, evaluation is journal-first: a worker resuming a
/// partially-complete shard replays its journal and only simulates the
/// missing candidates, and a worker that finds every shard done performs
/// zero simulation.
///
/// # Errors
///
/// Journal and coordination I/O errors.
pub fn run_shard_worker(
    space: &SearchSpace,
    cfg: &DseConfig,
    workloads: &[Workload],
    dir: &Path,
    opts: &ShardOptions,
) -> io::Result<WorkerStats> {
    let cfg = DseConfig {
        halving: None,
        ..cfg.clone()
    };
    shard::run_worker(&shard::coord_path(dir), opts, |ctx| {
        let s = ctx.shard();
        let journal = Journal::open(shard::shard_journal(dir, s))?.with_tag(s, ctx.epoch());
        let mut engine = DseEngine::new(space.clone(), cfg.clone()).with_journal(journal);
        for w in workloads {
            engine.add_workload(w.clone());
        }
        for i in 0..space.len() {
            let c = space.nth(i);
            if candidate_shard(&c, opts.shards) != s {
                continue;
            }
            engine.evaluate_full(std::slice::from_ref(&c))?;
            if !ctx.checkpoint()? {
                // Fenced: another worker owns this shard now; our
                // stale-epoch rows lose the merge. Stop writing.
                return Ok(());
            }
        }
        engine.sync_journal()
    })
}

/// Merge per-shard journal files into one deterministic line set: per
/// `(hash, budget)` key the highest-epoch record wins
/// ([`nupea::shard::merge_by_key`]), so the result is a pure function of
/// the journals' record multiset — independent of shard count, worker
/// death order, steal interleaving, or the order `paths` is given in.
/// Missing files contribute nothing (their shards may simply be empty).
///
/// # Errors
///
/// Journal I/O errors.
pub fn merge_journal_lines(paths: &[std::path::PathBuf]) -> io::Result<Vec<String>> {
    let mut all = Vec::new();
    for p in paths {
        let (_, lines) = nupea::jsonl::JsonlFile::open(p)?;
        all.extend(lines);
    }
    let merged = shard::merge_by_key(all, |l| {
        let hash = nupea::jsonl::u64_field(l, "hash")?;
        let budget = nupea::jsonl::string_field(l, "budget")?;
        Some((hash, budget))
    });
    let mut lines: Vec<String> = merged.into_values().collect();
    lines.sort_unstable(); // canonical order for the returned set
    Ok(lines)
}

/// Merge a sharded search's per-shard journals and assemble the
/// [`DseReport`] — pure journal I/O, zero simulation. The report is
/// byte-identical to a `shards = 1` grid search over the same space
/// (same strategy name, evaluation count, and frontiers), regardless of
/// how the sharded run was executed.
///
/// # Errors
///
/// Journal I/O errors, or `InvalidData` when a `(candidate, workload)`
/// pair has no full-budget record (some shard has not finished).
pub fn merge_sharded(
    space: &SearchSpace,
    cfg: &DseConfig,
    workloads: &[Workload],
    dir: &Path,
    shards: u32,
) -> io::Result<DseReport> {
    let paths: Vec<std::path::PathBuf> = (0..shards.max(1))
        .map(|s| shard::shard_journal(dir, s))
        .collect();
    let journal = Journal::from_lines(merge_journal_lines(&paths)?);
    for i in 0..space.len() {
        let c = space.nth(i);
        for w in workloads {
            if journal.lookup(config_hash(w, &c), &Budget::Full).is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "sharded merge incomplete: no full-budget record for {} on shard {}",
                        c.key(),
                        candidate_shard(&c, shards)
                    ),
                ));
            }
        }
    }
    let cfg = DseConfig {
        halving: None,
        ..cfg.clone()
    };
    let mut engine = DseEngine::new(space.clone(), cfg).with_journal(journal);
    for w in workloads {
        engine.add_workload(w.clone());
    }
    engine.run(&mut GridSearch::new(space.len().max(1)))
}

/// The sharded search entry point: degrade to a plain single-process
/// grid search (journaled in shard 0's file) when `opts.shards <= 1`;
/// otherwise work as one worker until every shard is done (joining or
/// resuming any workers already running against `dir`), then merge.
///
/// # Errors
///
/// Journal and coordination I/O errors.
pub fn run_sharded(
    space: &SearchSpace,
    cfg: &DseConfig,
    workloads: &[Workload],
    dir: &Path,
    opts: &ShardOptions,
) -> io::Result<DseReport> {
    if opts.shards <= 1 {
        let cfg = DseConfig {
            halving: None,
            ..cfg.clone()
        };
        let journal = Journal::open(shard::shard_journal(dir, 0))?;
        let mut engine = DseEngine::new(space.clone(), cfg).with_journal(journal);
        for w in workloads {
            engine.add_workload(w.clone());
        }
        return engine.run(&mut GridSearch::new(space.len().max(1)));
    }
    run_shard_worker(space, cfg, workloads, dir, opts)?;
    merge_sharded(space, cfg, workloads, dir, opts.shards)
}

/// Map a runner record to a journal outcome.
fn outcome_of(rec: &RunRecord) -> Outcome {
    match rec.error_kind {
        None => Outcome::Done(Score {
            cycles: rec.cycles,
            energy: rec.energy.total(),
            pes: rec.active_pes,
        }),
        Some(kind) => Outcome::Failed(kind.label().to_string()),
    }
}

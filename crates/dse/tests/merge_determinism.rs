//! Deterministic-merge property coverage (satellite of the sharding PR):
//! merging per-shard DSE journals in any permutation — with duplicated
//! rows from a stolen-and-reexecuted shard and a fenced stale row —
//! yields a Pareto frontier byte-identical to the single-process run on
//! the full 13-workload suite.
//!
//! The journals are synthetic (scores derived from the stable config
//! hash), so the property runs over all 13 workloads without a single
//! simulation: the engine assembles frontiers purely from journal
//! replay in both the sharded and the single-process path.

use nupea::jsonl::JsonlFile;
use nupea::shard::{shard_journal, tag_line, ShardOptions};
use nupea::{all_workloads, Scale, Workload};
use nupea_dse::{
    candidate_shard, config_hash, merge_journal_lines, merge_sharded, run_sharded, Budget,
    DseConfig, JournalEntry, Outcome, Score, SearchSpace,
};
use std::path::PathBuf;

const SHARDS: u32 = 5;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nupea-merge-det-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn suite() -> Vec<Workload> {
    all_workloads()
        .iter()
        .map(|s| s.build_default(Scale::Test))
        .collect()
}

fn small_space() -> SearchSpace {
    SearchSpace {
        domain_cols: vec![2, 3],
        d0_cols: vec![2, 3],
        cache_words: vec![64 * 1024],
        effort: 16,
        ..SearchSpace::default()
    }
}

/// The synthetic truth: one full-budget entry per (workload, candidate),
/// scores a pure function of the config hash. One pair is a failure so
/// the frontier path over `None` scores is exercised too.
fn truth_entries(space: &SearchSpace, workloads: &[Workload]) -> Vec<JournalEntry> {
    let mut out = Vec::new();
    for i in 0..space.len() {
        let c = space.nth(i);
        for (wi, w) in workloads.iter().enumerate() {
            let hash = config_hash(w, &c);
            let outcome = if i == 1 && wi == 0 {
                Outcome::Failed("deadlock".into())
            } else {
                Outcome::Done(Score {
                    cycles: 1_000 + hash % 50_000,
                    // Eighths are exact in binary: formatting stays stable.
                    energy: ((hash >> 8) % 10_000) as f64 / 8.0,
                    pes: 1 + (hash % 64) as usize,
                })
            };
            out.push(JournalEntry {
                hash,
                workload: w.name.to_string(),
                budget: Budget::Full,
                candidate: c.clone(),
                outcome,
            });
        }
    }
    out
}

/// The single-process baseline: every truth line (untagged) in shard 0's
/// journal, then the `shards = 1` degraded path replays it — zero
/// simulation because the journal is complete.
fn single_process_json(space: &SearchSpace, workloads: &[Workload]) -> String {
    let dir = scratch("single");
    let (mut jf, _) = JsonlFile::open(shard_journal(&dir, 0)).unwrap();
    for e in truth_entries(space, workloads) {
        jf.append(&e.to_line()).unwrap();
    }
    let report = run_sharded(
        space,
        &DseConfig::default(),
        workloads,
        &dir,
        &ShardOptions::with_shards(1),
    )
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    report.to_json()
}

/// Deterministic permutation `p` of `lines` (rotations, reversals, and
/// stride shuffles — no RNG so the test is reproducible byte-for-byte).
fn permute(lines: &mut Vec<String>, p: usize) {
    match p % 4 {
        0 => {}
        1 => lines.reverse(),
        2 => {
            let n = lines.len().max(1);
            lines.rotate_left(p % n);
        }
        _ => {
            let stride = 3;
            let mut out = Vec::with_capacity(lines.len());
            for start in 0..stride {
                out.extend(lines.iter().skip(start).step_by(stride).cloned());
            }
            *lines = out;
        }
    }
}

#[test]
fn permuted_duplicated_shard_journals_merge_byte_identical() {
    let space = small_space();
    let workloads = suite();
    let single = single_process_json(&space, &workloads);
    let truth = truth_entries(&space, &workloads);

    for p in 0..4 {
        let dir = scratch(&format!("perm{p}"));
        // Shard 0 was "stolen and re-executed": its rows appear at epoch 1
        // AND again (identical content) at epoch 2, plus one divergent
        // stale epoch-1 row whose truth exists only at epoch 2 — the merge
        // must fence the stale row out by epoch.
        let mut per_shard: Vec<Vec<String>> = vec![Vec::new(); SHARDS as usize];
        let mut stolen_truth_skipped = false;
        for e in &truth {
            let s = candidate_shard(&e.candidate, SHARDS);
            let line = e.to_line();
            if s == 0 {
                if !stolen_truth_skipped {
                    // The divergent stale attempt: wrong content at epoch 1,
                    // truth only at epoch 2 (the thief's re-execution).
                    let divergent = line.replace("\"cycles\":", "\"cycles\":9");
                    assert_ne!(divergent, line);
                    per_shard[0].push(tag_line(&divergent, 0, 1));
                    per_shard[0].push(tag_line(&line, 0, 2));
                    stolen_truth_skipped = true;
                } else {
                    per_shard[0].push(tag_line(&line, 0, 1));
                    per_shard[0].push(tag_line(&line, 0, 2)); // duplicate row
                }
            } else {
                per_shard[s as usize].push(tag_line(&line, s, 1));
            }
        }
        assert!(stolen_truth_skipped, "shard 0 owns at least one candidate");
        // Permutation 3 additionally scatters lines across the *wrong*
        // shard files: the merge is global, so file assignment must not
        // matter either.
        if p == 3 {
            let mut all: Vec<String> = per_shard.concat();
            permute(&mut all, p);
            per_shard = vec![Vec::new(); SHARDS as usize];
            for (i, line) in all.into_iter().enumerate() {
                per_shard[i % SHARDS as usize].push(line);
            }
        }
        for (s, mut lines) in per_shard.into_iter().enumerate() {
            permute(&mut lines, p + s);
            let (mut jf, _) = JsonlFile::open(shard_journal(&dir, s as u32)).unwrap();
            for line in &lines {
                jf.append(line).unwrap();
            }
        }
        let report = merge_sharded(&space, &DseConfig::default(), &workloads, &dir, SHARDS)
            .unwrap_or_else(|e| panic!("permutation {p}: {e}"));
        assert_eq!(
            report.to_json(),
            single,
            "permutation {p}: merged frontier must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn merge_journal_lines_is_invariant_to_path_order() {
    let space = small_space();
    let workloads = suite();
    let dir = scratch("paths");
    for e in truth_entries(&space, &workloads) {
        let s = candidate_shard(&e.candidate, SHARDS);
        let (mut jf, _) = JsonlFile::open(shard_journal(&dir, s)).unwrap();
        jf.append(&tag_line(&e.to_line(), s, 1)).unwrap();
    }
    let mut paths: Vec<PathBuf> = (0..SHARDS).map(|s| shard_journal(&dir, s)).collect();
    let forward = merge_journal_lines(&paths).unwrap();
    paths.reverse();
    assert_eq!(merge_journal_lines(&paths).unwrap(), forward);
    paths.rotate_left(2);
    assert_eq!(merge_journal_lines(&paths).unwrap(), forward);
    assert_eq!(forward.len(), space.len() * workloads.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_of_incomplete_shards_is_a_typed_error_not_a_simulation() {
    let space = small_space();
    let workloads = suite();
    let dir = scratch("gap");
    // Every shard journal except shard 0's.
    for e in truth_entries(&space, &workloads) {
        let s = candidate_shard(&e.candidate, SHARDS);
        if s == 0 {
            continue;
        }
        let (mut jf, _) = JsonlFile::open(shard_journal(&dir, s)).unwrap();
        jf.append(&tag_line(&e.to_line(), s, 1)).unwrap();
    }
    let err = merge_sharded(&space, &DseConfig::default(), &workloads, &dir, SHARDS).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

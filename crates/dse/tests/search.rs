//! End-to-end properties of the DSE subsystem against real simulations:
//! frontier non-domination, same-seed byte-identical reports, and
//! kill/resume with zero re-simulation.

use nupea::{all_workloads, Heuristic, Scale, Workload};
use nupea_dse::{
    Annealing, DseConfig, DseEngine, GridSearch, HalvingConfig, Journal, RandomSearch, SearchSpace,
};

/// A six-point space that stays fast in debug builds: fixed Monaco
/// geometry except the direct-port share, all three heuristics.
fn tiny_space() -> SearchSpace {
    SearchSpace {
        domain_cols: vec![3],
        d0_cols: vec![2, 3],
        cache_words: vec![64 * 1024],
        effort: 32,
        ..SearchSpace::default()
    }
}

fn spmspv() -> Workload {
    all_workloads()
        .into_iter()
        .find(|w| w.name == "spmspv")
        .expect("Table 1 includes spmspv")
        .build_default(Scale::Test)
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nupea-dse-test-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn grid_search_frontier_is_non_dominated_and_effcc_leads() {
    let mut engine = DseEngine::new(tiny_space(), DseConfig::default());
    engine.add_workload(spmspv());
    let report = engine.run(&mut GridSearch::new(4)).unwrap();

    assert_eq!(report.frontiers.len(), 1);
    let frontier = &report.frontiers[0].frontier;
    assert!(!frontier.is_empty(), "some configuration must succeed");
    assert!(
        frontier.is_non_dominated(),
        "reported points must be Pareto"
    );
    assert_eq!(report.evaluated, 6, "2 d0 shares x 3 heuristics");
    assert_eq!(report.simulated, 6, "fresh engine simulates everything");

    // The paper's headline ordering: criticality-aware placement is at
    // least as fast as domain-unaware on the critical-load workload.
    let effcc = report
        .best_cycles("spmspv", Heuristic::CriticalityAware)
        .expect("effcc candidates succeed");
    let unaware = report
        .best_cycles("spmspv", Heuristic::DomainUnaware)
        .expect("domain-unaware candidates succeed");
    assert!(
        effcc <= unaware,
        "effcc ({effcc} cyc) must not trail domain-unaware ({unaware} cyc)"
    );
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let run = || {
        let mut engine = DseEngine::new(tiny_space(), DseConfig::default());
        engine.add_workload(spmspv());
        let report = engine
            .run(&mut Annealing::with_defaults(0xDEAD_BEEF, 8))
            .unwrap();
        (report.to_json(), report.render())
    };
    let (json_a, render_a) = run();
    let (json_b, render_b) = run();
    assert_eq!(json_a, json_b, "same seed must reproduce the JSON exactly");
    assert_eq!(render_a, render_b);

    let mut other = DseEngine::new(tiny_space(), DseConfig::default());
    other.add_workload(spmspv());
    let different = other
        .run(&mut Annealing::with_defaults(0xBAD_5EED, 8))
        .unwrap();
    // (Not guaranteed in general, but with this space and these seeds the
    // walks diverge — a regression here means seeding is being ignored.)
    assert_ne!(
        json_a,
        different.to_json(),
        "different seeds explore different trajectories"
    );
}

#[test]
fn killed_search_resumes_with_zero_resimulation() {
    let dir = scratch("resume");
    let path = dir.join("journal.jsonl");

    // Complete run, journaled.
    let mut engine = DseEngine::new(tiny_space(), DseConfig::default())
        .with_journal(Journal::open(&path).unwrap());
    engine.add_workload(spmspv());
    let full = engine.run(&mut GridSearch::new(4)).unwrap();
    assert_eq!(full.simulated, 6);

    // Simulate a mid-search kill: drop the last two journal lines (plus a
    // truncated garbage tail, as a real kill mid-append would leave).
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6);
    let truncated = lines[..4].join("\n") + "\n{\"hash\":99,\"workl";
    std::fs::write(&path, truncated).unwrap();

    // Resume: only the two dropped points re-simulate.
    let journal = Journal::open(&path).unwrap();
    assert_eq!(journal.replayed, 4);
    assert_eq!(journal.skipped, 1, "the torn tail is skipped, not fatal");
    let mut engine = DseEngine::new(tiny_space(), DseConfig::default()).with_journal(journal);
    engine.add_workload(spmspv());
    let resumed = engine.run(&mut GridSearch::new(4)).unwrap();
    assert_eq!(resumed.simulated, 2, "only killed-off points re-simulate");
    assert_eq!(resumed.journal_hits, 4);

    // Resume again: everything replays, nothing simulates, and the report
    // is byte-identical to the resumed one.
    let mut engine = DseEngine::new(tiny_space(), DseConfig::default())
        .with_journal(Journal::open(&path).unwrap());
    engine.add_workload(spmspv());
    let replayed = engine.run(&mut GridSearch::new(4)).unwrap();
    assert_eq!(replayed.simulated, 0, "full journal means zero simulation");
    assert_eq!(replayed.journal_hits, 6);
    assert_eq!(replayed.to_json(), resumed.to_json());
    assert_eq!(full.to_json(), replayed.to_json(), "resume changes nothing");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn random_search_repeats_hit_the_journal_not_the_simulator() {
    let mut engine = DseEngine::new(tiny_space(), DseConfig::default());
    engine.add_workload(spmspv());
    // 24 draws over a 6-point grid guarantee repeats; each unique point
    // simulates once and every repeat is served from the journal index.
    let report = engine.run(&mut RandomSearch::new(7, 24, 6)).unwrap();
    assert_eq!(report.evaluated, 24);
    assert!(
        report.simulated <= 6,
        "at most one simulation per grid point"
    );
    assert_eq!(report.journal_hits + report.simulated, 24);
    assert!(report.frontiers[0].frontier.is_non_dominated());
}

#[test]
fn successive_halving_eliminates_on_capped_budgets() {
    let cfg = DseConfig {
        halving: Some(HalvingConfig {
            base_budget: 10_000,
            eta: 3,
            rungs: 1,
        }),
        ..DseConfig::default()
    };
    let mut engine = DseEngine::new(tiny_space(), cfg);
    engine.add_workload(spmspv());
    let report = engine.run(&mut GridSearch::new(6)).unwrap();

    // One capped rung over all 6, then ceil(6/3) = 2 survivors at full
    // budget: 8 (workload, candidate, budget) evaluations in total.
    assert_eq!(report.evaluated, 8);
    let full: Vec<_> = report.history.iter().filter(|e| e.full).collect();
    assert_eq!(full.len(), 2, "only promoted survivors run at full budget");
    let frontier = &report.frontiers[0].frontier;
    assert!(!frontier.is_empty());
    assert!(
        frontier.len() <= 2,
        "eliminated points never reach the frontier"
    );
    assert!(frontier.is_non_dominated());
}

//! Edge-case tests for the timed engine: RAW ordering through memory
//! tokens under contention, eager/lazy conditionals, cycle-limit guard,
//! and clock-divider arithmetic.

use nupea_fabric::Fabric;
use nupea_ir::graph::Dfg;
use nupea_ir::op::{BinOpKind, CmpKind, Op, SteerPolarity};
use nupea_sim::{simple_placement, Engine, MemParams, MemoryModel, SimConfig, SimError, SimMemory};

fn cfg_tiny() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.mem = MemParams::tiny();
    cfg
}

fn run(
    g: &Dfg,
    mem: &mut SimMemory,
    binds: &[(nupea_ir::ParamId, i64)],
    cfg: SimConfig,
) -> Result<nupea_sim::RunStats, SimError> {
    let fabric = Fabric::monaco(8, 8, 3).unwrap();
    let pe_of = simple_placement(g, &fabric, true);
    let mut e = Engine::new(g, &fabric, &pe_of, cfg);
    for &(p, v) in binds {
        e.bind(p, v);
    }
    e.run(mem)
}

/// store(addr, 42) -> ordered load(addr): the load must observe the store
/// even when the store's bank is kept busy by background traffic.
#[test]
fn raw_ordering_holds_under_bank_contention() {
    let mut g = Dfg::new("raw");
    let (a, ap) = g.add_param("addr");
    let st = g.add_node(Op::Store);
    g.connect(a, 0, st, Op::STORE_ADDR);
    g.set_imm(st, Op::STORE_VALUE, 42);
    // Background loads to the same bank (same line) to create contention.
    for i in 0..3 {
        let (p, _) = g.add_param(format!("bg{i}"));
        let ld = g.add_node(Op::Load);
        g.connect(p, 0, ld, Op::LOAD_ADDR);
        let (s, _) = g.add_sink(format!("bg_out{i}"));
        g.connect(ld, 0, s, 0);
    }
    // The ordered load.
    let (a2, ap2) = g.add_param("addr2");
    let ld = g.add_node(Op::Load);
    g.connect(a2, 0, ld, Op::LOAD_ADDR);
    g.connect(st, 0, ld, Op::LOAD_ORDER);
    let (s, _) = g.add_sink("value");
    g.connect(ld, Op::OUT_VALUE, s, 0);

    let params = MemParams::tiny();
    let mut mem = SimMemory::new(&params);
    let addr = 5i64;
    let mut binds = vec![(ap, addr), (ap2, addr)];
    for (pid, name) in g.params() {
        if name.starts_with('b') || name.starts_with('p') {
            binds.push((*pid, addr + 1)); // same line, same bank
        }
    }
    let stats = run(&g, &mut mem, &binds, cfg_tiny()).unwrap();
    assert_eq!(
        stats.sinks.last().unwrap(),
        &vec![42],
        "load must see the store"
    );
    assert_eq!(mem.read(addr as usize), 42);
}

/// Eager Select and gated Mux agree in the timed engine, as in the interp.
#[test]
fn timed_select_and_mux_agree() {
    for d in [0i64, 1] {
        let mut results = Vec::new();
        for lazy in [false, true] {
            let mut g = Dfg::new("sel");
            let (dp, dpi) = g.add_param("d");
            let (tp, tpi) = g.add_param("t");
            let (fp, fpi) = g.add_param("f");
            let n = if lazy {
                let ts = g.add_node(Op::Steer(SteerPolarity::OnTrue));
                g.connect(dp, 0, ts, 0);
                g.connect(tp, 0, ts, 1);
                let fs = g.add_node(Op::Steer(SteerPolarity::OnFalse));
                g.connect(dp, 0, fs, 0);
                g.connect(fp, 0, fs, 1);
                let m = g.add_node(Op::Mux);
                g.connect(dp, 0, m, 0);
                g.connect(ts, 0, m, 1);
                g.connect(fs, 0, m, 2);
                m
            } else {
                let sel = g.add_node(Op::Select);
                g.connect(dp, 0, sel, 0);
                g.connect(tp, 0, sel, 1);
                g.connect(fp, 0, sel, 2);
                sel
            };
            let (s, _) = g.add_sink("out");
            g.connect(n, 0, s, 0);
            let mut mem = SimMemory::new(&MemParams::tiny());
            let stats = run(
                &g,
                &mut mem,
                &[(dpi, d), (tpi, 100), (fpi, 200)],
                cfg_tiny(),
            )
            .unwrap();
            assert_eq!(stats.residual_tokens, 0);
            results.push(stats.sinks[0][0]);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], if d != 0 { 100 } else { 200 });
    }
}

/// The cycle cap turns a runaway loop into an error instead of a hang.
#[test]
fn cycle_limit_stops_infinite_loops() {
    let mut g = Dfg::new("inf");
    let (z, zp) = g.add_param("z");
    let c = g.add_node(Op::Carry);
    g.connect(z, 0, c, Op::CARRY_INIT);
    let inc = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(c, 0, inc, 0);
    g.set_imm(inc, 1, 1);
    g.connect(inc, 0, c, Op::CARRY_BACK);
    // Condition is always true: x >= 0 starting from 0 counting up...
    let cond = g.add_node(Op::Cmp(CmpKind::Ge));
    g.connect(inc, 0, cond, 0);
    g.set_imm(cond, 1, 0);
    g.connect(cond, 0, c, Op::CARRY_DECIDER);

    let mut mem = SimMemory::new(&MemParams::tiny());
    let mut cfg = cfg_tiny();
    cfg.max_cycles = 10_000;
    match run(&g, &mut mem, &[(zp, 0)], cfg) {
        Err(SimError::CycleLimit { limit }) => assert_eq!(limit, 10_000),
        other => panic!("expected CycleLimit, got {other:?}"),
    }
}

/// Divider arithmetic: cycles at divider d are strictly less than d× the
/// divider-1 time (memory runs at full rate), but at least the divider-1
/// time itself.
#[test]
fn divider_scaling_is_bounded() {
    // Small accumulation loop with loads.
    let mut g = Dfg::new("loop");
    let (z, zp) = g.add_param("z");
    let carry = g.add_node(Op::Carry);
    g.connect(z, 0, carry, Op::CARRY_INIT);
    let cond = g.add_node(Op::Cmp(CmpKind::Lt));
    g.connect(carry, 0, cond, 0);
    g.set_imm(cond, 1, 32);
    g.connect(cond, 0, carry, Op::CARRY_DECIDER);
    let body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
    g.connect(cond, 0, body, 0);
    g.connect(carry, 0, body, 1);
    let ld = g.add_node(Op::Load);
    g.connect(body, 0, ld, Op::LOAD_ADDR);
    let inc = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(body, 0, inc, 0);
    g.set_imm(inc, 1, 1);
    g.connect(inc, 0, carry, Op::CARRY_BACK);
    let (s, _) = g.add_sink("v");
    g.connect(ld, 0, s, 0);

    let mut cycles = Vec::new();
    for d in [1u64, 2, 4] {
        let mut mem = SimMemory::new(&MemParams::tiny());
        let mut cfg = cfg_tiny();
        cfg.divider = d;
        let stats = run(&g, &mut mem, &[(zp, 0)], cfg).unwrap();
        assert_eq!(stats.sinks[0].len(), 32);
        cycles.push(stats.cycles);
    }
    assert!(cycles[1] > cycles[0] && cycles[2] > cycles[1]);
    assert!(
        cycles[1] < cycles[0] * 2 && cycles[2] < cycles[0] * 4,
        "full-rate memory must soften the divider: {cycles:?}"
    );
}

/// All memory models agree on results for a store/load mix.
#[test]
fn models_agree_on_final_memory() {
    let mut g = Dfg::new("mix");
    // i loop storing i*i to out+i then reading back into a sink.
    let (z, zp) = g.add_param("z");
    let carry = g.add_node(Op::Carry);
    g.connect(z, 0, carry, Op::CARRY_INIT);
    let cond = g.add_node(Op::Cmp(CmpKind::Lt));
    g.connect(carry, 0, cond, 0);
    g.set_imm(cond, 1, 16);
    g.connect(cond, 0, carry, Op::CARRY_DECIDER);
    let body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
    g.connect(cond, 0, body, 0);
    g.connect(carry, 0, body, 1);
    let sq = g.add_node(Op::BinOp(BinOpKind::Mul));
    g.connect(body, 0, sq, 0);
    g.connect(body, 0, sq, 1);
    let addr = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(body, 0, addr, 0);
    g.set_imm(addr, 1, 64);
    let st = g.add_node(Op::Store);
    g.connect(addr, 0, st, Op::STORE_ADDR);
    g.connect(sq, 0, st, Op::STORE_VALUE);
    let inc = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(body, 0, inc, 0);
    g.set_imm(inc, 1, 1);
    g.connect(inc, 0, carry, Op::CARRY_BACK);

    let mut images = Vec::new();
    for model in [
        MemoryModel::Nupea,
        MemoryModel::IDEAL,
        MemoryModel::Upea(3),
        MemoryModel::NumaUpea(2),
    ] {
        let mut mem = SimMemory::new(&MemParams::tiny());
        let mut cfg = cfg_tiny();
        cfg.model = model;
        run(&g, &mut mem, &[(zp, 0)], cfg).unwrap();
        images.push(mem.words().to_vec());
    }
    for w in images.windows(2) {
        assert_eq!(w[0], w[1], "models must agree on final memory");
    }
    assert_eq!(images[0][64 + 5], 25);
}

//! Edge-case tests for the timed engine: RAW ordering through memory
//! tokens under contention, eager/lazy conditionals, cycle-limit guard,
//! and clock-divider arithmetic.

use nupea_fabric::Fabric;
use nupea_ir::graph::Dfg;
use nupea_ir::op::{BinOpKind, CmpKind, Op, SteerPolarity};
use nupea_pnr::{place::place, Netlist, PlaceConfig};
use nupea_sim::{
    ConfigError, Engine, MemParams, MemoryModel, PerturbConfig, SimConfig, SimError, SimMemory,
    StallKind,
};

fn cfg_tiny() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.mem = MemParams::tiny();
    cfg
}

fn run(
    g: &Dfg,
    mem: &mut SimMemory,
    binds: &[(nupea_ir::ParamId, i64)],
    cfg: SimConfig,
) -> Result<nupea_sim::RunStats, SimError> {
    let fabric = Fabric::monaco(8, 8, 3).unwrap();
    let netlist = Netlist::from_dfg(g);
    let pe_of = place(&fabric, &netlist, &PlaceConfig::default())
        .expect("edge-case graphs fit the 8x8 fabric")
        .pe_of;
    let mut e = Engine::new(g, &fabric, &pe_of, cfg);
    for &(p, v) in binds {
        e.bind(p, v);
    }
    e.run(mem)
}

/// store(addr, 42) -> ordered load(addr): the load must observe the store
/// even when the store's bank is kept busy by background traffic.
#[test]
fn raw_ordering_holds_under_bank_contention() {
    let mut g = Dfg::new("raw");
    let (a, ap) = g.add_param("addr");
    let st = g.add_node(Op::Store);
    g.connect(a, 0, st, Op::STORE_ADDR);
    g.set_imm(st, Op::STORE_VALUE, 42);
    // Background loads to the same bank (same line) to create contention.
    for i in 0..3 {
        let (p, _) = g.add_param(format!("bg{i}"));
        let ld = g.add_node(Op::Load);
        g.connect(p, 0, ld, Op::LOAD_ADDR);
        let (s, _) = g.add_sink(format!("bg_out{i}"));
        g.connect(ld, 0, s, 0);
    }
    // The ordered load.
    let (a2, ap2) = g.add_param("addr2");
    let ld = g.add_node(Op::Load);
    g.connect(a2, 0, ld, Op::LOAD_ADDR);
    g.connect(st, 0, ld, Op::LOAD_ORDER);
    let (s, _) = g.add_sink("value");
    g.connect(ld, Op::OUT_VALUE, s, 0);

    let params = MemParams::tiny();
    let mut mem = SimMemory::new(&params);
    let addr = 5i64;
    let mut binds = vec![(ap, addr), (ap2, addr)];
    for (pid, name) in g.params() {
        if name.starts_with('b') || name.starts_with('p') {
            binds.push((*pid, addr + 1)); // same line, same bank
        }
    }
    let stats = run(&g, &mut mem, &binds, cfg_tiny()).unwrap();
    assert_eq!(
        stats.sinks.last().unwrap(),
        &vec![42],
        "load must see the store"
    );
    assert_eq!(mem.read(addr as usize), 42);
}

/// Eager Select and gated Mux agree in the timed engine, as in the interp.
#[test]
fn timed_select_and_mux_agree() {
    for d in [0i64, 1] {
        let mut results = Vec::new();
        for lazy in [false, true] {
            let mut g = Dfg::new("sel");
            let (dp, dpi) = g.add_param("d");
            let (tp, tpi) = g.add_param("t");
            let (fp, fpi) = g.add_param("f");
            let n = if lazy {
                let ts = g.add_node(Op::Steer(SteerPolarity::OnTrue));
                g.connect(dp, 0, ts, 0);
                g.connect(tp, 0, ts, 1);
                let fs = g.add_node(Op::Steer(SteerPolarity::OnFalse));
                g.connect(dp, 0, fs, 0);
                g.connect(fp, 0, fs, 1);
                let m = g.add_node(Op::Mux);
                g.connect(dp, 0, m, 0);
                g.connect(ts, 0, m, 1);
                g.connect(fs, 0, m, 2);
                m
            } else {
                let sel = g.add_node(Op::Select);
                g.connect(dp, 0, sel, 0);
                g.connect(tp, 0, sel, 1);
                g.connect(fp, 0, sel, 2);
                sel
            };
            let (s, _) = g.add_sink("out");
            g.connect(n, 0, s, 0);
            let mut mem = SimMemory::new(&MemParams::tiny());
            let stats = run(
                &g,
                &mut mem,
                &[(dpi, d), (tpi, 100), (fpi, 200)],
                cfg_tiny(),
            )
            .unwrap();
            assert_eq!(stats.residual_tokens, 0);
            results.push(stats.sinks[0][0]);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], if d != 0 { 100 } else { 200 });
    }
}

/// The cycle cap turns a runaway loop into an error instead of a hang.
#[test]
fn cycle_limit_stops_infinite_loops() {
    let mut g = Dfg::new("inf");
    let (z, zp) = g.add_param("z");
    let c = g.add_node(Op::Carry);
    g.connect(z, 0, c, Op::CARRY_INIT);
    let inc = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(c, 0, inc, 0);
    g.set_imm(inc, 1, 1);
    g.connect(inc, 0, c, Op::CARRY_BACK);
    // Condition is always true: x >= 0 starting from 0 counting up...
    let cond = g.add_node(Op::Cmp(CmpKind::Ge));
    g.connect(inc, 0, cond, 0);
    g.set_imm(cond, 1, 0);
    g.connect(cond, 0, c, Op::CARRY_DECIDER);

    let mut mem = SimMemory::new(&MemParams::tiny());
    let mut cfg = cfg_tiny();
    cfg.max_cycles = 10_000;
    match run(&g, &mut mem, &[(zp, 0)], cfg) {
        Err(SimError::CycleLimit { limit }) => assert_eq!(limit, 10_000),
        other => panic!("expected CycleLimit, got {other:?}"),
    }
}

/// Divider arithmetic: cycles at divider d are strictly less than d× the
/// divider-1 time (memory runs at full rate), but at least the divider-1
/// time itself.
#[test]
fn divider_scaling_is_bounded() {
    // Small accumulation loop with loads.
    let mut g = Dfg::new("loop");
    let (z, zp) = g.add_param("z");
    let carry = g.add_node(Op::Carry);
    g.connect(z, 0, carry, Op::CARRY_INIT);
    let cond = g.add_node(Op::Cmp(CmpKind::Lt));
    g.connect(carry, 0, cond, 0);
    g.set_imm(cond, 1, 32);
    g.connect(cond, 0, carry, Op::CARRY_DECIDER);
    let body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
    g.connect(cond, 0, body, 0);
    g.connect(carry, 0, body, 1);
    let ld = g.add_node(Op::Load);
    g.connect(body, 0, ld, Op::LOAD_ADDR);
    let inc = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(body, 0, inc, 0);
    g.set_imm(inc, 1, 1);
    g.connect(inc, 0, carry, Op::CARRY_BACK);
    let (s, _) = g.add_sink("v");
    g.connect(ld, 0, s, 0);

    let mut cycles = Vec::new();
    for d in [1u64, 2, 4] {
        let mut mem = SimMemory::new(&MemParams::tiny());
        let mut cfg = cfg_tiny();
        cfg.divider = d;
        let stats = run(&g, &mut mem, &[(zp, 0)], cfg).unwrap();
        assert_eq!(stats.sinks[0].len(), 32);
        cycles.push(stats.cycles);
    }
    assert!(cycles[1] > cycles[0] && cycles[2] > cycles[1]);
    assert!(
        cycles[1] < cycles[0] * 2 && cycles[2] < cycles[0] * 4,
        "full-rate memory must soften the divider: {cycles:?}"
    );
}

/// All memory models agree on results for a store/load mix.
#[test]
fn models_agree_on_final_memory() {
    let mut g = Dfg::new("mix");
    // i loop storing i*i to out+i then reading back into a sink.
    let (z, zp) = g.add_param("z");
    let carry = g.add_node(Op::Carry);
    g.connect(z, 0, carry, Op::CARRY_INIT);
    let cond = g.add_node(Op::Cmp(CmpKind::Lt));
    g.connect(carry, 0, cond, 0);
    g.set_imm(cond, 1, 16);
    g.connect(cond, 0, carry, Op::CARRY_DECIDER);
    let body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
    g.connect(cond, 0, body, 0);
    g.connect(carry, 0, body, 1);
    let sq = g.add_node(Op::BinOp(BinOpKind::Mul));
    g.connect(body, 0, sq, 0);
    g.connect(body, 0, sq, 1);
    let addr = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(body, 0, addr, 0);
    g.set_imm(addr, 1, 64);
    let st = g.add_node(Op::Store);
    g.connect(addr, 0, st, Op::STORE_ADDR);
    g.connect(sq, 0, st, Op::STORE_VALUE);
    let inc = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(body, 0, inc, 0);
    g.set_imm(inc, 1, 1);
    g.connect(inc, 0, carry, Op::CARRY_BACK);

    let mut images = Vec::new();
    for model in [
        MemoryModel::Nupea,
        MemoryModel::IDEAL,
        MemoryModel::Upea(3),
        MemoryModel::NumaUpea(2),
    ] {
        let mut mem = SimMemory::new(&MemParams::tiny());
        let mut cfg = cfg_tiny();
        cfg.model = model;
        run(&g, &mut mem, &[(zp, 0)], cfg).unwrap();
        images.push(mem.words().to_vec());
    }
    for w in images.windows(2) {
        assert_eq!(w[0], w[1], "models must agree on final memory");
    }
    assert_eq!(images[0][64 + 5], 25);
}

/// A credit-starved loop must terminate with a diagnosed `Deadlock` in a
/// handful of cycles, not quiesce silently or spin to `max_cycles`: a
/// counter loop feeds an adder whose second operand comes from a filter
/// that never forwards, so with `fifo_depth = 1` the adder's first input
/// FIFO fills and backpressure wedges the whole loop.
#[test]
fn credit_starved_graph_deadlocks_with_diagnostics() {
    let mut g = Dfg::new("wedge");
    let (z, zp) = g.add_param("z");
    let carry = g.add_node(Op::Carry);
    g.connect(z, 0, carry, Op::CARRY_INIT);
    let cond = g.add_node(Op::Cmp(CmpKind::Lt));
    g.connect(carry, 0, cond, 0);
    g.set_imm(cond, 1, 1_000_000);
    g.connect(cond, 0, carry, Op::CARRY_DECIDER);
    let body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
    g.connect(cond, 0, body, 0);
    g.connect(carry, 0, body, 1);
    let inc = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(body, 0, inc, 0);
    g.set_imm(inc, 1, 1);
    g.connect(inc, 0, carry, Op::CARRY_BACK);
    // The wedge: `never` filters on the inverted loop condition, so it
    // consumes every iteration but forwards nothing, and `sum` can never
    // fire. Its port-0 FIFO (fed by `body`) fills at depth 1.
    let never = g.add_node(Op::Steer(SteerPolarity::OnFalse));
    g.connect(cond, 0, never, 0);
    g.connect(carry, 0, never, 1);
    let sum = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(body, 0, sum, 0);
    g.connect(never, 0, sum, 1);
    let (s, _) = g.add_sink("out");
    g.connect(sum, 0, s, 0);

    let mut mem = SimMemory::new(&MemParams::tiny());
    let mut cfg = cfg_tiny();
    cfg.fifo_depth = 1;
    match run(&g, &mut mem, &[(zp, 0)], cfg) {
        Err(SimError::Deadlock(report)) => {
            assert!(!report.nodes.is_empty(), "report must name stalled nodes");
            assert!(
                report.cycle < 10_000,
                "deadlock must be detected promptly, not at cycle {}",
                report.cycle
            );
            assert!(report.residual_tokens > 0, "tokens are trapped");
            // The steer is the node actually held by backpressure, and the
            // report must say who holds its credit.
            let steer = report
                .nodes
                .iter()
                .find(|n| n.node == body.0)
                .expect("the credit-starved steer must be in the report");
            assert_eq!(steer.kind, StallKind::NoConsumerCredit);
            assert!(
                steer.blocked_on.contains(&sum.0),
                "steer must be blocked on the adder, got {:?}",
                steer.blocked_on
            );
            // The adder itself is waiting on the operand that never comes.
            let adder = report
                .nodes
                .iter()
                .find(|n| n.node == sum.0)
                .expect("the starved adder must be in the report");
            assert_eq!(adder.kind, StallKind::WaitingOperand);
            assert!(adder.missing_ports.contains(&1));
            // The Display form is a usable diagnostic.
            let text = report.to_string();
            assert!(text.contains("no-consumer-credit"), "{text}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

/// Unbalanced-but-acyclic residue (a token produced for a branch that
/// never executes) stays a normal completion with `residual_tokens > 0` —
/// the deadlock detector must not fire on plain imbalance.
#[test]
fn unbalanced_kernel_still_completes_with_residual() {
    let mut g = Dfg::new("imbalance");
    let (d, dp) = g.add_param("d");
    let (t, tp) = g.add_param("t");
    let (f, fp) = g.add_param("f");
    let m = g.add_node(Op::Mux);
    g.connect(d, 0, m, 0);
    g.connect(t, 0, m, 1);
    g.connect(f, 0, m, 2);
    let (s, _) = g.add_sink("out");
    g.connect(m, 0, s, 0);

    let mut mem = SimMemory::new(&MemParams::tiny());
    // d = 1 takes the `t` branch; `f`'s token is never consumed.
    let stats = run(&g, &mut mem, &[(dp, 1), (tp, 5), (fp, 9)], cfg_tiny()).unwrap();
    assert_eq!(stats.sinks[0], vec![5]);
    assert_eq!(stats.residual_tokens, 1, "the untaken branch token remains");
}

/// The quiescence-window watchdog converts a hang into a diagnosed
/// `Stalled` error. Two loads contend for the same bank, so the second
/// request sits queued behind the busy bank for the full miss latency —
/// with `stall_window = 1` those completion-free busy cycles trip the
/// watchdog, and the report classifies the wait as memory-outstanding.
#[test]
fn stall_watchdog_reports_memory_wait() {
    let mut g = Dfg::new("slow");
    for i in 0..2 {
        let (a, _) = g.add_param(format!("addr{i}"));
        let ld = g.add_node(Op::Load);
        g.connect(a, 0, ld, Op::LOAD_ADDR);
        let (s, _) = g.add_sink(format!("v{i}"));
        g.connect(ld, Op::OUT_VALUE, s, 0);
    }
    let binds: Vec<_> = g.params().iter().map(|(p, _)| (*p, 7i64)).collect();

    let mut mem = SimMemory::new(&MemParams::tiny());
    let mut cfg = cfg_tiny();
    cfg.stall_window = 1;
    match run(&g, &mut mem, &binds, cfg) {
        Err(SimError::Stalled { window, report }) => {
            assert_eq!(window, 1);
            let load = report
                .nodes
                .iter()
                .find(|n| n.kind == StallKind::MemoryOutstanding)
                .expect("the queued load must be in the report");
            assert_eq!(load.outstanding, 1);
            assert!(load.op.contains("Load"), "op is {:?}", load.op);
        }
        other => panic!("expected Stalled, got {other:?}"),
    }

    // The default window is far larger than any memory round-trip: the
    // same kernel completes untouched.
    let mut mem = SimMemory::new(&MemParams::tiny());
    let stats = run(&g, &mut mem, &binds, cfg_tiny()).unwrap();
    assert_eq!(stats.sinks.len(), 2);
}

/// Latency perturbation changes the schedule but never the results: the
/// loop kernel produces identical sinks and memory under heavy jitter,
/// while taking (weakly) longer.
#[test]
fn perturbation_changes_timing_but_not_results() {
    let mut g = Dfg::new("ploop");
    let (z, zp) = g.add_param("z");
    let carry = g.add_node(Op::Carry);
    g.connect(z, 0, carry, Op::CARRY_INIT);
    let cond = g.add_node(Op::Cmp(CmpKind::Lt));
    g.connect(carry, 0, cond, 0);
    g.set_imm(cond, 1, 24);
    g.connect(cond, 0, carry, Op::CARRY_DECIDER);
    let body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
    g.connect(cond, 0, body, 0);
    g.connect(carry, 0, body, 1);
    let ld = g.add_node(Op::Load);
    g.connect(body, 0, ld, Op::LOAD_ADDR);
    let inc = g.add_node(Op::BinOp(BinOpKind::Add));
    g.connect(body, 0, inc, 0);
    g.set_imm(inc, 1, 1);
    g.connect(inc, 0, carry, Op::CARRY_BACK);
    let (s, _) = g.add_sink("v");
    g.connect(ld, 0, s, 0);

    let mut base_mem = SimMemory::new(&MemParams::tiny());
    let base = run(&g, &mut base_mem, &[(zp, 0)], cfg_tiny()).unwrap();
    assert_eq!(base.sinks[0].len(), 24);

    let mut saw_slower = false;
    for seed in [1u64, 2, 3] {
        let mut cfg = cfg_tiny();
        cfg.perturb = PerturbConfig {
            seed,
            max_noc_jitter: 7,
            max_mem_jitter: 15,
        };
        let mut mem = SimMemory::new(&MemParams::tiny());
        let stats = run(&g, &mut mem, &[(zp, 0)], cfg).unwrap();
        assert_eq!(stats.sinks, base.sinks, "seed {seed}: sinks must match");
        assert_eq!(
            mem.words(),
            base_mem.words(),
            "seed {seed}: memory must match"
        );
        assert_eq!(stats.residual_tokens, 0);
        assert!(stats.cycles >= base.cycles, "jitter only adds latency");
        saw_slower |= stats.cycles > base.cycles;
    }
    assert!(
        saw_slower,
        "heavy jitter must actually perturb the schedule"
    );
}

/// Degenerate configurations are rejected with typed errors instead of
/// silent repair (the old `divider.max(1)`) or deep-in-the-engine panics.
#[test]
fn degenerate_configs_are_rejected_by_validate() {
    assert!(SimConfig::default().validate().is_ok());
    assert!(MemParams::tiny().validate().is_ok());

    let mut cfg = SimConfig::default();
    cfg.divider = 0;
    assert_eq!(cfg.validate(), Err(ConfigError::ZeroDivider));

    let mut cfg = SimConfig::default();
    cfg.fifo_depth = 0;
    assert_eq!(cfg.validate(), Err(ConfigError::ZeroFifoDepth));

    let mut cfg = SimConfig::default();
    cfg.max_outstanding = 0;
    assert_eq!(cfg.validate(), Err(ConfigError::ZeroMaxOutstanding));

    let mut cfg = SimConfig::default();
    cfg.mem.banks = 0;
    assert_eq!(cfg.validate(), Err(ConfigError::ZeroBanks));

    let mut mp = MemParams::tiny();
    mp.line_words = 0;
    assert_eq!(mp.validate(), Err(ConfigError::ZeroLineWords));
    let mut mp = MemParams::tiny();
    mp.ways = 0;
    assert_eq!(mp.validate(), Err(ConfigError::ZeroWays));
    let mut mp = MemParams::tiny();
    mp.mem_words = 0;
    assert_eq!(mp.validate(), Err(ConfigError::ZeroMemWords));

    // Each error renders a distinct human-readable message.
    let msgs: Vec<String> = [
        ConfigError::ZeroDivider,
        ConfigError::ZeroFifoDepth,
        ConfigError::ZeroMaxOutstanding,
        ConfigError::ZeroBanks,
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    for w in msgs.windows(2) {
        assert_ne!(w[0], w[1]);
    }
}

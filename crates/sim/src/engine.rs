//! The timed ordered-dataflow engine.
//!
//! Executes a placed DFG cycle-accurately (§6 of the paper's methodology):
//!
//! * Time is counted in **system cycles**; the fabric evaluates only on
//!   ticks of the PnR-chosen clock **divider** (§4.2), while the memory
//!   system and fabric-memory NoC run every system cycle — so a divided
//!   fabric sees relatively faster memory, exactly as the paper models it.
//! * Each PE input operand has a bounded token FIFO; a node fires when all
//!   required operand heads are present *and* every connected consumer FIFO
//!   has a free (unreserved) slot — credit-based backpressure.
//! * Arithmetic fires at most once per fabric cycle with one-cycle latency;
//!   control-flow gates are combinational (tokens can traverse a chain of
//!   distinct gates within one tick); loads/stores issue requests to the
//!   [`MemSys`](crate::memsys::MemSys) and deliver responses **in issue
//!   order** (ordered dataflow) when they return.
//!
//! The engine executes real data: its sink values and final memory contents
//! are differentially tested against the untimed interpreter in `nupea-ir`.

use crate::energy::{EnergyBreakdown, EnergyParams};
use crate::fault::{FaultConfig, FaultState, LinkFault, STUCK_DELAY};
use crate::memory::{MemParams, SimMemory};
use crate::memsys::{Completion, MemRequest, MemSys, MemSysStats, MemoryModel};
use crate::perturb::{Perturb, PerturbConfig};
use crate::trace::{
    RingRecorder, TraceBuffer, TraceConfig, TraceEvent, TraceMeta, Tracer, NO_DOMAIN,
};
use crate::watchdog::{PortOccupancy, StallKind, StallReport, StalledNode};
use nupea_fabric::{Fabric, PeId};
use nupea_ir::graph::{Criticality, Dfg, InPort, NodeId};
use nupea_ir::op::{Op, ParamId, SteerPolarity};
use std::collections::BinaryHeap;
use std::fmt;

/// Simulator configuration.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SimConfig {
    /// Memory model (NUPEA, UPEA-n, NUMA-UPEA-n).
    pub model: MemoryModel,
    /// Memory geometry and latencies.
    pub mem: MemParams,
    /// Fabric clock divider (from PnR timing).
    pub divider: u64,
    /// Token FIFO depth per input operand.
    pub fifo_depth: usize,
    /// Maximum outstanding memory requests per load-store instruction
    /// (LS-PE request queue depth).
    pub max_outstanding: usize,
    /// Seed for the NUMA-domain assignment of LS PEs.
    pub numa_seed: u64,
    /// Hard cap on simulated system cycles (runaway guard).
    pub max_cycles: u64,
    /// Watchdog quiescence window: if this many system cycles elapse with
    /// no firing, delivery, or memory completion while the simulation is
    /// still active, the run is aborted with [`SimError::Stalled`]. Must
    /// comfortably exceed the worst memory round-trip (plus any configured
    /// perturbation jitter); `0` disables the watchdog.
    pub stall_window: u64,
    /// Latency-perturbation fuzzing (off by default; see
    /// [`PerturbConfig`]).
    pub perturb: PerturbConfig,
    /// Fault injection (off by default; see [`FaultConfig`]). When armed,
    /// exactly one concrete fault is injected into the run; a disabled
    /// config is bit-identical to a build without the fault module.
    pub fault: FaultConfig,
    /// Per-event energy weights.
    pub energy: EnergyParams,
    /// Event tracing (off by default; see [`TraceConfig`]). When enabled,
    /// retrieve the recorded events with [`Engine::take_trace`] after the
    /// run.
    pub trace: TraceConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            model: MemoryModel::Nupea,
            mem: MemParams::default(),
            divider: 2,
            fifo_depth: 8,
            max_outstanding: 8,
            numa_seed: 0xA55A,
            max_cycles: 2_000_000_000,
            stall_window: 1_000_000,
            perturb: PerturbConfig::OFF,
            fault: FaultConfig::OFF,
            energy: EnergyParams::default(),
            trace: TraceConfig::OFF,
        }
    }
}

impl SimConfig {
    /// Reject degenerate configurations before they reach the engine,
    /// where they would deadlock (`fifo_depth == 0`), never fire a memory
    /// op (`max_outstanding == 0`), or divide by zero (`divider == 0`).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.divider == 0 {
            return Err(ConfigError::ZeroDivider);
        }
        if self.fifo_depth == 0 {
            return Err(ConfigError::ZeroFifoDepth);
        }
        if self.max_outstanding == 0 {
            return Err(ConfigError::ZeroMaxOutstanding);
        }
        self.mem.validate()
    }
}

/// A degenerate simulator or memory configuration, caught by
/// [`SimConfig::validate`] / [`MemParams::validate`] instead of panicking
/// (or being silently repaired) deep inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `divider == 0`: the fabric clock cannot be divided by zero.
    ZeroDivider,
    /// `fifo_depth == 0`: no token could ever be delivered.
    ZeroFifoDepth,
    /// `max_outstanding == 0`: no memory op could ever issue.
    ZeroMaxOutstanding,
    /// `banks == 0`: the memory system needs at least one bank.
    ZeroBanks,
    /// `line_words == 0`: cache lines must hold at least one word.
    ZeroLineWords,
    /// `ways == 0`: the cache needs at least one way.
    ZeroWays,
    /// `mem_words == 0`: the memory must hold at least one word.
    ZeroMemWords,
    /// The fabric defines no memory domain (no load-store columns):
    /// nothing could ever be placed near memory, and every per-domain
    /// aggregate would be empty. Previously repaired silently with
    /// `num_domains().max(1)`.
    ZeroDomains,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroDivider => write!(f, "divider must be >= 1"),
            ConfigError::ZeroFifoDepth => write!(f, "fifo_depth must be >= 1"),
            ConfigError::ZeroMaxOutstanding => write!(f, "max_outstanding must be >= 1"),
            ConfigError::ZeroBanks => write!(f, "memory banks must be >= 1"),
            ConfigError::ZeroLineWords => write!(f, "cache line_words must be >= 1"),
            ConfigError::ZeroWays => write!(f, "cache ways must be >= 1"),
            ConfigError::ZeroMemWords => write!(f, "mem_words must be >= 1"),
            ConfigError::ZeroDomains => {
                write!(f, "fabric must define at least one memory domain")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A memory access faulted (out of bounds).
    Fault {
        /// Issuing node.
        node: NodeId,
    },
    /// The cycle cap was reached.
    CycleLimit {
        /// The configured cap.
        limit: u64,
    },
    /// A param node has no bound value.
    UnboundParam(ParamId),
    /// A node tried to consume from an unconnected input port — a
    /// malformed graph/bitstream, reported structurally instead of
    /// panicking (panics would defeat the runner's panic isolation).
    UnconnectedPort {
        /// The consuming node.
        node: NodeId,
        /// The unconnected input port.
        port: u8,
    },
    /// No further progress is possible: tokens are trapped behind full
    /// FIFOs or a blocking cycle. The report names every stalled node.
    Deadlock(Box<StallReport>),
    /// Nothing progressed for [`SimConfig::stall_window`] cycles while the
    /// simulation was still active (livelock / lost-wakeup watchdog).
    Stalled {
        /// The configured quiescence window.
        window: u64,
        /// Snapshot of every stalled node at detection time.
        report: Box<StallReport>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Fault { node } => write!(f, "memory fault at {node}"),
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} reached"),
            SimError::UnboundParam(p) => write!(f, "param {} unbound", p.0),
            SimError::UnconnectedPort { node, port } => {
                write!(f, "consume on unconnected port {port} of {node}")
            }
            SimError::Deadlock(r) => {
                write!(f, "deadlock at cycle {}: {}", r.cycle, r.summary())
            }
            SimError::Stalled { window, report } => write!(
                f,
                "no progress for {window} cycles (at cycle {}): {}",
                report.cycle,
                report.summary()
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-domain load-latency aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DomainLatency {
    /// Total system-cycle latency of completed loads issued from the domain.
    pub total_latency: u64,
    /// Completed loads issued from the domain.
    pub count: u64,
}

impl DomainLatency {
    /// Mean latency (0 when no loads completed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.count as f64
        }
    }
}

/// Aggregate data-NoC traffic on one producer-PE → consumer-PE link
/// (heatmap source; only links that carried tokens are reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Producer PE index.
    pub src_pe: u32,
    /// Consumer PE index.
    pub dst_pe: u32,
    /// Tokens carried over the run.
    pub tokens: u64,
    /// Manhattan hop distance of the link.
    pub hops: u16,
}

/// Results of a timed run.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunStats {
    /// Completion time in system cycles.
    pub cycles: u64,
    /// Completion time in fabric cycles (`cycles / divider`, rounded up).
    pub fabric_cycles: u64,
    /// Clock divider used.
    pub divider: u64,
    /// Total instruction firings.
    pub firings: u64,
    /// Firings per node.
    pub firings_per_node: Vec<u64>,
    /// Firings per PE (indexed by PE index; utilization heatmap source —
    /// a PE's utilization is its firings over `fabric_cycles`).
    pub firings_per_pe: Vec<u64>,
    /// Data-NoC traffic per used producer→consumer PE link, sorted by
    /// (src, dst).
    pub link_traffic: Vec<LinkTraffic>,
    /// Values collected by each sink, in arrival order.
    pub sinks: Vec<Vec<i64>>,
    /// Memory-system statistics.
    pub mem: MemSysStats,
    /// Cache hit rate.
    pub cache_hit_rate: f64,
    /// Load latency aggregated by the issuing PE's NUPEA domain.
    pub load_latency_by_domain: Vec<DomainLatency>,
    /// Tokens left buffered at quiescence (0 for balanced kernels).
    pub residual_tokens: usize,
    /// Energy consumed, by component.
    pub energy: EnergyBreakdown,
}

impl RunStats {
    /// PEs that fired at least once.
    #[must_use]
    pub fn active_pes(&self) -> usize {
        self.firings_per_pe.iter().filter(|&&f| f > 0).count()
    }

    /// Mean utilization (firings / fabric cycles) over the PEs that fired
    /// at least once; 0 when nothing fired.
    #[must_use]
    pub fn mean_pe_utilization(&self) -> f64 {
        let active = self.active_pes();
        if active == 0 || self.fabric_cycles == 0 {
            return 0.0;
        }
        let total: u64 = self.firings_per_pe.iter().sum();
        total as f64 / (active as f64 * self.fabric_cycles as f64)
    }

    /// Heaviest data-NoC link load (tokens on the busiest link).
    #[must_use]
    pub fn peak_link_tokens(&self) -> u64 {
        self.link_traffic
            .iter()
            .map(|l| l.tokens)
            .max()
            .unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateState {
    Fresh,
    Looping,
    Holding(i64),
}

/// One output edge of the fan-out CSR, with everything the per-firing hot
/// path needs precomputed at construction: the consumer FIFO's flat index,
/// the PE→PE link index into the token heatmap, the hop distance (clamped
/// for the trace), and the NoC energy of one token on this edge.
#[derive(Debug, Clone, Copy)]
struct PortState {
    /// Ring head slot.
    head: u16,
    /// Buffered tokens.
    len: u16,
    /// In-flight tokens with a reserved slot.
    reserved: u16,
}

#[derive(Debug, Clone, Copy)]
struct FanEdge {
    /// Consumer node.
    dst: u32,
    /// Consumer input port.
    dst_port: u8,
    /// Manhattan hop distance (clamped to `u16::MAX` for the trace).
    hops: u16,
    /// Flat index of the consumer FIFO (`port_base[dst] + dst_port`).
    fifo_idx: u32,
    /// `src_pe * num_pes + dst_pe` into the link-token matrix.
    link_idx: u32,
    /// `hops * energy.noc_hop`, the per-token data-NoC energy.
    hop_energy: f64,
}

/// Where a flat input port's tokens come from (dense mirror of
/// [`InPort`], indexed by `port_base[node] + port`).
#[derive(Debug, Clone, Copy)]
enum PortSrc {
    /// Constant operand: always present, never consumed.
    Imm(i64),
    /// Wired operand fed by the producer node's FIFO slot here.
    Wire(u32),
    /// Unconnected: never fires.
    Unconnected,
}

/// A scheduled token delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Delivery {
    time: u64,
    seq: u64,
    dst: u32,
    port: u8,
    value: i64,
}

impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, seq) via reversal at the call sites.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Calendar-wheel slot count. Nearly every delivery lands within one
/// clock-divider period of its emission (plus small perturb jitter), so a
/// 256-cycle horizon covers the fast path with room to spare.
const WHEEL_SLOTS: usize = 256;

/// Pending-delivery queue: a calendar wheel for the common near-future
/// case plus a binary-heap overflow for far-future events (stuck-link
/// faults schedule `STUCK_DELAY` ≈ 1e9 cycles out; unbounded perturb
/// jitter can too).
///
/// Pop order is exactly ascending `(time, seq)`, bit-identical to the
/// binary heap this replaces: `seq` is globally monotonic at push time, so
/// FIFO order within one wheel slot *is* seq order, and slots are drained
/// in ascending time. The wheel slot of an event is its absolute time
/// modulo [`WHEEL_SLOTS`]; `floor` (the engine's current cycle, advanced
/// every main-loop iteration) guarantees all near events live in
/// `[floor, floor + WHEEL_SLOTS)`, so distinct queued times never share a
/// slot and every slot holds tokens of a single delivery time.
struct EventWheel {
    slots: Vec<std::collections::VecDeque<Delivery>>,
    /// Occupancy bitmap over `slots` (one bit per slot).
    occ: [u64; WHEEL_SLOTS / 64],
    /// Events currently in the wheel.
    near: usize,
    /// Lower bound on every queued delivery time (= current engine cycle).
    floor: u64,
    /// Earliest queued wheel-event time (`u64::MAX` when the wheel is
    /// empty). Maintained incrementally: a push takes the min, a pop that
    /// empties its slot triggers one bitmap rescan — so peeking the queue
    /// is O(1) instead of a scan per main-loop iteration.
    next_cache: u64,
    /// Far-future overflow, min-ordered by `(time, seq)`.
    far: BinaryHeap<std::cmp::Reverse<Delivery>>,
}

impl EventWheel {
    fn new() -> Self {
        EventWheel {
            slots: (0..WHEEL_SLOTS)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            occ: [0; WHEEL_SLOTS / 64],
            near: 0,
            floor: 0,
            next_cache: u64::MAX,
            far: BinaryHeap::new(),
        }
    }

    /// Advance the wheel floor to the engine's current cycle. Must be
    /// called before any push or pop at cycle `t`; all queued events are
    /// `>= t` (the main loop never jumps past a pending delivery).
    #[inline]
    fn advance(&mut self, t: u64) {
        self.floor = t;
    }

    #[inline]
    fn push(&mut self, d: Delivery) {
        debug_assert!(d.time >= self.floor, "delivery scheduled in the past");
        if d.time - self.floor < WHEEL_SLOTS as u64 {
            let s = (d.time as usize) & (WHEEL_SLOTS - 1);
            if self.slots[s].is_empty() {
                self.occ[s >> 6] |= 1 << (s & 63);
            }
            self.slots[s].push_back(d);
            self.near += 1;
            self.next_cache = self.next_cache.min(d.time);
        } else {
            self.far.push(std::cmp::Reverse(d));
        }
    }

    /// Earliest queued delivery time in the wheel, or `u64::MAX`.
    /// Bitmap rescan — only called when a pop empties its slot.
    fn scan_near(&self) -> u64 {
        if self.near == 0 {
            return u64::MAX;
        }
        // Circular scan of the occupancy bitmap from the floor slot.
        let s0 = (self.floor as usize) & (WHEEL_SLOTS - 1);
        let words = WHEEL_SLOTS / 64;
        let (base_w, base_b) = (s0 >> 6, s0 & 63);
        for i in 0..=words {
            let w = (base_w + i) % words;
            let mut bits = self.occ[w];
            if i == 0 {
                bits &= !0u64 << base_b;
            } else if i == words {
                bits &= (1u64 << base_b) - 1;
            }
            if bits != 0 {
                let slot = (w << 6) | bits.trailing_zeros() as usize;
                let dist = (slot + WHEEL_SLOTS - s0) & (WHEEL_SLOTS - 1);
                return self.floor + dist as u64;
            }
        }
        unreachable!("near > 0 but occupancy bitmap empty");
    }

    /// Earliest queued delivery time overall, or `u64::MAX` when empty.
    #[inline]
    fn next_time(&self) -> u64 {
        let far = self.far.peek().map_or(u64::MAX, |r| r.0.time);
        self.next_cache.min(far)
    }

    /// Pop the earliest `(time, seq)` delivery if it is due at `t`.
    fn pop_due(&mut self, t: u64) -> Option<Delivery> {
        let nt = self.next_cache;
        let ft = self.far.peek().map_or(u64::MAX, |r| r.0.time);
        let time = nt.min(ft);
        if time > t {
            return None;
        }
        // Same-time tie between wheel and overflow: lower seq first.
        let use_far = ft < nt
            || (ft == nt && {
                let s = (nt as usize) & (WHEEL_SLOTS - 1);
                let near_seq = self.slots[s].front().expect("occupied slot").seq;
                self.far.peek().expect("ft < MAX").0.seq < near_seq
            });
        if use_far {
            return Some(self.far.pop().expect("peeked above").0);
        }
        let s = (time as usize) & (WHEEL_SLOTS - 1);
        let d = self.slots[s].pop_front().expect("occupied slot");
        self.near -= 1;
        if self.slots[s].is_empty() {
            self.occ[s >> 6] &= !(1 << (s & 63));
            self.next_cache = self.scan_near();
        }
        Some(d)
    }
}

/// The timed simulator for one placed DFG.
pub struct Engine<'g> {
    dfg: &'g Dfg,
    fabric: &'g Fabric,
    pe_of: &'g [PeId],
    cfg: SimConfig,

    /// Flat token-FIFO arena: `fifo_depth` contiguous slots per input
    /// port, addressed by flat port index × depth. Ring arithmetic uses
    /// if-subtract (depth is rarely a power of two).
    fifo_buf: Vec<i64>,
    /// Per-port ring state — head, occupancy, and in-flight reservation
    /// count packed into one 6-byte record so the hot FIFO paths touch a
    /// single array element (one bounds check, one cache line) instead of
    /// three parallel arrays.
    ports: Vec<PortState>,
    /// Flat index base per node into the port arrays (`len() + 1` entries;
    /// the last is the total port count).
    port_base: Vec<u32>,
    /// Per-port operand source (dense mirror of the graph's `InPort`s).
    port_src: Vec<PortSrc>,
    /// Per-node opcode (dense mirror; avoids graph chasing per firing).
    ops: Vec<Op>,
    /// Fan-out CSR: node `n`'s port-`p` edges are
    /// `fan[fan_start[out_base[n] + p] .. fan_start[out_base[n] + p + 1]]`.
    /// `out_base` has `len() + 1` entries; a node with `P` used output
    /// ports owns `P + 1` consecutive boundaries in `fan_start`.
    out_base: Vec<u32>,
    fan_start: Vec<u32>,
    fan: Vec<FanEdge>,

    state: Vec<GateState>,
    param_emitted: Vec<bool>,
    /// Param bindings, dense by `ParamId` (ids are allocated 0..n).
    bindings: Vec<Option<i64>>,
    last_fired_tick: Vec<u64>,

    events: EventWheel,
    event_seq: u64,
    dirty_now: Vec<u32>,
    dirty_next: Vec<u32>,
    in_now: Vec<bool>,
    in_next: Vec<bool>,

    /// Outstanding-memory rings, `max_outstanding` slots per node at base
    /// `node * max_outstanding`: issue sequence numbers in issue order,
    /// with the matching completion parked in `mo_done` until it reaches
    /// the head (ordered dataflow drains strictly in issue order).
    mo_seq: Vec<u64>,
    mo_done: Vec<Option<Completion>>,
    mo_head: Vec<u32>,
    mo_len: Vec<u32>,
    /// Last scheduled response-delivery time per node: ordered dataflow
    /// requires responses to leave the PE in issue order even when a later,
    /// faster request (cache hit / idle bank) completes first.
    last_resp_time: Vec<u64>,
    next_seq: u64,

    sinks: Vec<Vec<i64>>,
    firings: Vec<u64>,
    total_firings: u64,
    load_lat: Vec<DomainLatency>,

    /// Event recorder (None when tracing is disabled: every record site is
    /// a single branch on the discriminant — zero cost when off).
    tracer: Option<RingRecorder>,
    /// Always-on per-PE firing counts (utilization heatmap).
    pe_firings: Vec<u64>,
    /// Always-on per-link token counts, flat `src_pe * num_pes + dst_pe`
    /// (O(1) increment per token; sparsified into `RunStats` at run end).
    link_tokens: Vec<u64>,
    /// Per-fan-edge token counts, parallel to `fan`. The hot emit paths
    /// bump these (contiguous per node, cache-resident) instead of the
    /// 144x144 `link_tokens` matrix, whose scattered per-token increments
    /// showed up as a measurable cache cost; folded into `link_tokens` at
    /// run end, which is a sum reassociation over exact u64 counters.
    edge_tokens: Vec<u64>,

    energy: EnergyBreakdown,

    /// Seeded latency jitter (None when fuzzing is off).
    perturb: Option<Perturb>,
    /// Per-FIFO monotonic clamp on perturbed delivery times: jitter must
    /// never reorder tokens within one FIFO.
    last_delivery: Vec<u64>,
    /// Armed fault (None when injection is off: every site is a single
    /// branch on the discriminant — zero cost when off).
    fault: Option<FaultState>,

    /// Cached [`MemSys::next_event_at`] result: the earliest cycle at
    /// which stepping the memory system can do anything beyond busy-bank
    /// wait accounting. Lowered to `t + 1` on every issue; recomputed
    /// after every real step.
    mem_next: u64,
    /// Last cycle the memory system was actually stepped; the quiescent
    /// stretch since then is accounted via [`MemSys::skip_to`] right
    /// before the next real step.
    mem_last: u64,

    memsys: MemSys,
    /// Reusable completion-drain buffer (swapped with the memory system's
    /// internal one each batch, so neither side allocates in steady state).
    comp_scratch: Vec<Completion>,
}

impl<'g> Engine<'g> {
    /// Create an engine for a placed graph.
    pub fn new(dfg: &'g Dfg, fabric: &'g Fabric, pe_of: &'g [PeId], cfg: SimConfig) -> Self {
        assert_eq!(pe_of.len(), dfg.len(), "placement must cover every node");
        debug_assert!(
            cfg.validate().is_ok(),
            "degenerate SimConfig (call SimConfig::validate): {:?}",
            cfg.validate()
        );
        let mut port_base = Vec::with_capacity(dfg.len() + 1);
        let mut port_src = Vec::new();
        let mut nports = 0u32;
        for (_, n) in dfg.iter() {
            port_base.push(nports);
            nports += n.inputs.len() as u32;
            for inp in &n.inputs {
                port_src.push(match *inp {
                    InPort::Imm(v) => PortSrc::Imm(v),
                    InPort::Wire { src, .. } => PortSrc::Wire(src.0),
                    InPort::Unconnected => PortSrc::Unconnected,
                });
            }
        }
        port_base.push(nports);
        // Fan-out CSR with per-edge hop distance, link index, and energy
        // precomputed: the per-firing hot path never touches the graph or
        // the fabric's distance function again. Edge order within each
        // (node, port) range matches the graph's `outs` order, which the
        // event sequence numbering depends on.
        let num_pes = fabric.num_pes();
        let mut out_base = Vec::with_capacity(dfg.len() + 1);
        let mut fan_start = Vec::new();
        let mut fan: Vec<FanEdge> = Vec::new();
        for (id, _) in dfg.iter() {
            out_base.push(fan_start.len() as u32);
            let outs = dfg.outs(id);
            let used_ports = outs.iter().map(|e| e.src_port as usize + 1).max();
            let src_pe = pe_of[id.index()];
            for p in 0..used_ports.unwrap_or(0) {
                fan_start.push(fan.len() as u32);
                for e in outs.iter().filter(|e| e.src_port as usize == p) {
                    let dst_pe = pe_of[e.dst.index()];
                    let hops = fabric.dist(src_pe, dst_pe);
                    fan.push(FanEdge {
                        dst: e.dst.0,
                        dst_port: e.dst_port,
                        hops: hops.min(u32::from(u16::MAX)) as u16,
                        fifo_idx: port_base[e.dst.index()] + u32::from(e.dst_port),
                        link_idx: (src_pe.index() * num_pes + dst_pe.index()) as u32,
                        hop_energy: f64::from(hops) * cfg.energy.noc_hop,
                    });
                }
            }
            fan_start.push(fan.len() as u32);
        }
        out_base.push(fan_start.len() as u32);
        let fan_len = fan.len();
        let memsys = MemSys::new(fabric, cfg.model, cfg.mem, cfg.divider, cfg.numa_seed);
        // A zero-domain fabric is rejected by `SystemConfig::validate`
        // (ConfigError::ZeroDomains) instead of being silently repaired
        // here; the per-domain aggregates stay honestly empty.
        let num_domains = usize::from(fabric.num_domains());
        Engine {
            dfg,
            fabric,
            pe_of,
            fifo_buf: vec![0; nports as usize * cfg.fifo_depth],
            ports: vec![
                PortState {
                    head: 0,
                    len: 0,
                    reserved: 0
                };
                nports as usize
            ],
            port_base,
            port_src,
            ops: dfg.iter().map(|(_, n)| n.op).collect(),
            out_base,
            fan_start,
            fan,
            state: vec![GateState::Fresh; dfg.len()],
            param_emitted: vec![false; dfg.len()],
            bindings: Vec::new(),
            last_fired_tick: vec![u64::MAX; dfg.len()],
            events: EventWheel::new(),
            event_seq: 0,
            dirty_now: Vec::new(),
            dirty_next: Vec::new(),
            in_now: vec![false; dfg.len()],
            in_next: vec![false; dfg.len()],
            mo_seq: vec![0; dfg.len() * cfg.max_outstanding],
            mo_done: vec![None; dfg.len() * cfg.max_outstanding],
            mo_head: vec![0; dfg.len()],
            mo_len: vec![0; dfg.len()],
            last_resp_time: vec![0; dfg.len()],
            next_seq: 0,
            sinks: vec![Vec::new(); dfg.sinks().len()],
            firings: vec![0; dfg.len()],
            total_firings: 0,
            load_lat: vec![DomainLatency::default(); num_domains],
            tracer: cfg
                .trace
                .enabled
                .then(|| RingRecorder::new(cfg.trace.capacity)),
            pe_firings: vec![0; fabric.num_pes()],
            link_tokens: vec![0; fabric.num_pes() * fabric.num_pes()],
            edge_tokens: vec![0; fan_len],
            energy: EnergyBreakdown::default(),
            perturb: Perturb::from_config(cfg.perturb),
            last_delivery: vec![0; nports as usize],
            fault: FaultState::from_config(&cfg.fault),
            memsys,
            comp_scratch: Vec::new(),
            mem_next: 0,
            mem_last: 0,
            cfg,
        }
    }

    /// Take the recorded trace (None when tracing was disabled or already
    /// taken). Call after [`Engine::run`]; the returned buffer carries
    /// node/PE/domain/criticality metadata so it can be exported with
    /// [`TraceBuffer::to_chrome_json`] and opened in `ui.perfetto.dev`.
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        let rec = self.tracer.take()?;
        let meta = TraceMeta {
            name: format!("{} on {}", self.dfg.name(), self.cfg.model),
            divider: self.cfg.divider,
            node_op: self
                .dfg
                .iter()
                .map(|(_, n)| format!("{:?}", n.op))
                .collect(),
            node_pe: self.pe_of.iter().map(|pe| pe.0).collect(),
            node_domain: self
                .pe_of
                .iter()
                .map(|&pe| self.fabric.domain(pe).map_or(NO_DOMAIN, |d| d.0))
                .collect(),
            node_critical: self
                .dfg
                .iter()
                .map(|(_, n)| n.meta.criticality == Some(Criticality::Critical))
                .collect(),
            num_domains: self.fabric.num_domains(),
        };
        Some(rec.into_buffer(meta))
    }

    /// Bind a param value.
    pub fn bind(&mut self, param: ParamId, value: i64) -> &mut Self {
        let i = param.0 as usize;
        if i >= self.bindings.len() {
            self.bindings.resize(i + 1, None);
        }
        self.bindings[i] = Some(value);
        self
    }

    #[inline]
    fn fifo_idx(&self, node: usize, port: usize) -> usize {
        (self.port_base[node] + port as u32) as usize
    }

    #[inline]
    fn fifo_front(&self, idx: usize) -> Option<i64> {
        let p = self.ports[idx];
        if p.len == 0 {
            None
        } else {
            Some(self.fifo_buf[idx * self.cfg.fifo_depth + usize::from(p.head)])
        }
    }

    #[inline]
    fn fifo_push_back(&mut self, idx: usize, v: i64) {
        let depth = self.cfg.fifo_depth as u32;
        let p = self.ports[idx];
        debug_assert!(u32::from(p.len) < depth, "FIFO overflow past reservation");
        let mut pos = u32::from(p.head) + u32::from(p.len);
        if pos >= depth {
            pos -= depth;
        }
        self.fifo_buf[idx * self.cfg.fifo_depth + pos as usize] = v;
        self.ports[idx].len = p.len + 1;
    }

    #[inline]
    fn fifo_pop_front(&mut self, idx: usize) -> i64 {
        let p = self.ports[idx];
        debug_assert!(p.len > 0, "consume without token");
        let v = self.fifo_buf[idx * self.cfg.fifo_depth + usize::from(p.head)];
        let mut nh = u32::from(p.head) + 1;
        if nh >= self.cfg.fifo_depth as u32 {
            nh = 0;
        }
        self.ports[idx].head = nh as u16;
        self.ports[idx].len = p.len - 1;
        v
    }

    /// Fan-out edges of (`node`, output `port`) as a range into `fan`
    /// (empty for ports beyond the node's used output ports).
    #[inline]
    fn fan_range(&self, node: usize, port: usize) -> std::ops::Range<usize> {
        let b = self.out_base[node] as usize;
        let nb = self.out_base[node + 1] as usize;
        if port + 1 >= nb - b {
            return 0..0;
        }
        self.fan_start[b + port] as usize..self.fan_start[b + port + 1] as usize
    }

    #[inline]
    fn peek(&self, node: usize, port: usize) -> Option<i64> {
        self.peek_idx(self.fifo_idx(node, port))
    }

    #[inline]
    fn peek_idx(&self, idx: usize) -> Option<i64> {
        match self.port_src[idx] {
            PortSrc::Imm(v) => Some(v),
            PortSrc::Wire(_) => self.fifo_front(idx),
            PortSrc::Unconnected => None,
        }
    }

    /// [`Engine::consume`] for a port whose value was already peeked (so
    /// the `Unconnected` error path is unreachable and the token value
    /// need not be re-read). Takes the precomputed FIFO index so the hot
    /// `try_fire` arms resolve `port_base` once per node.
    #[inline]
    fn consume_peeked(&mut self, idx: usize, node: usize, port: usize, tick: u64) {
        if let PortSrc::Wire(src) = self.port_src[idx] {
            // Same conditional producer wake as `consume` — see there.
            let full = {
                let p = self.ports[idx];
                u32::from(p.len) + u32::from(p.reserved) >= self.cfg.fifo_depth as u32
            };
            self.fifo_pop_front(idx);
            if full || self.fault.is_some() {
                self.mark_dirty(src as usize, tick);
            }
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(
                    tick * self.cfg.divider,
                    TraceEvent::FifoPop {
                        node: node as u32,
                        port: port as u8,
                        occupancy: self.ports[idx].len.min(u16::from(u8::MAX)) as u8,
                    },
                );
            }
        }
    }

    /// Checked consume. The fire arms all peek before consuming and use
    /// [`Engine::consume_peeked`]; this full-checked form is retained as
    /// the defense-in-depth path for malformed graphs (exercised by the
    /// `unconnected_consume_is_a_typed_error_not_a_panic` unit test).
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    fn consume(&mut self, node: usize, port: usize, tick: u64) -> Result<i64, SimError> {
        let idx = self.fifo_idx(node, port);
        match self.port_src[idx] {
            PortSrc::Imm(v) => Ok(v),
            PortSrc::Wire(src) => {
                // Space freed: the producer may be stalled on backpressure —
                // but only a pop from a *full* FIFO (counting in-flight
                // reservations) can flip a producer's `space_on` from false
                // to true, so non-full pops skip the wake. A spuriously
                // woken node fails `try_fire` with zero side effects, so
                // the successful-firing sequence — and with it every
                // observable stat — is unchanged; this just prunes dead
                // dirty-list work (~60% of all wakes). Fault injection is
                // the one exception: the link-drop path releases a
                // reservation without a wake and relies on later pops to
                // re-examine the producer, so keep the unconditional wake
                // whenever faults are armed.
                let p = self.ports[idx];
                let full = u32::from(p.len) + u32::from(p.reserved) >= self.cfg.fifo_depth as u32;
                let v = self.fifo_pop_front(idx);
                if full || self.fault.is_some() {
                    self.mark_dirty(src as usize, tick);
                }
                if let Some(tr) = self.tracer.as_mut() {
                    tr.record(
                        tick * self.cfg.divider,
                        TraceEvent::FifoPop {
                            node: node as u32,
                            port: port as u8,
                            occupancy: self.ports[idx].len.min(u16::from(u8::MAX)) as u8,
                        },
                    );
                }
                Ok(v)
            }
            // A malformed graph/bitstream: every `try_fire` arm peeks its
            // operands first, so a well-formed graph never reaches this —
            // but a graph wired with a required port left unconnected must
            // surface as a structured error, not a panic.
            PortSrc::Unconnected => Err(SimError::UnconnectedPort {
                node: NodeId(node as u32),
                port: port as u8,
            }),
        }
    }

    #[inline]
    fn order_wired(&self, node: usize, port: usize) -> bool {
        matches!(self.port_src[self.fifo_idx(node, port)], PortSrc::Wire(_))
    }

    /// True if every consumer FIFO of `node`'s output `port` can take one
    /// more (unreserved) token.
    fn space_on(&self, node: usize, port: usize) -> bool {
        for i in self.fan_range(node, port) {
            let idx = self.fan[i].fifo_idx as usize;
            let p = self.ports[idx];
            if usize::from(p.len) + usize::from(p.reserved) >= self.cfg.fifo_depth {
                return false;
            }
        }
        true
    }

    /// Reserve one slot in every consumer FIFO of (`node`, `port`).
    fn reserve(&mut self, node: usize, port: usize) {
        for i in self.fan_range(node, port) {
            self.ports[self.fan[i].fifo_idx as usize].reserved += 1;
        }
    }

    /// Schedule deliveries of `value` from (`node`, `port`) at `time`
    /// (consumer slots must already be reserved).
    fn schedule_emit(&mut self, node: usize, port: usize, value: i64, time: u64) {
        self.emit_scheduled::<false>(node, port, value, time);
    }

    /// [`Engine::reserve`] + [`Engine::schedule_emit`] fused into one fan
    /// walk — the common fire-time pair, saving a second edge pass. The
    /// per-edge interleaving is unobservable: nothing in the walk reads
    /// `reserved` (the link-drop release acts on the same edge's own
    /// reservation), and RNG draw order per edge is unchanged.
    fn reserve_emit(&mut self, node: usize, port: usize, value: i64, time: u64) {
        self.emit_scheduled::<true>(node, port, value, time);
    }

    fn emit_scheduled<const RESERVE: bool>(
        &mut self,
        node: usize,
        port: usize,
        value: i64,
        time: u64,
    ) {
        for i in self.fan_range(node, port) {
            let e = self.fan[i];
            if RESERVE {
                self.ports[e.fifo_idx as usize].reserved += 1;
            }
            self.event_seq += 1;
            self.energy.noc += e.hop_energy;
            self.edge_tokens[i] += 1;
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(
                    time,
                    TraceEvent::NocSend {
                        src: node as u32,
                        dst: e.dst,
                        hops: e.hops,
                    },
                );
            }
            let mut value = value;
            let mut at = time;
            if let Some(fs) = self.fault.as_mut() {
                if let Some(xor) = fs.corrupt_token() {
                    // Single-event upset: flip payload bits once, in flight.
                    value ^= xor as i64;
                }
                match fs.link_fault(self.pe_of[node].0, self.pe_of[e.dst as usize].0, time) {
                    Some(LinkFault::Drop) => {
                        // The token left the producer (hop charged above)
                        // but never arrives; release the consumer's slot so
                        // the loss is silent at the link level and surfaces
                        // only as starvation downstream.
                        let idx = e.fifo_idx as usize;
                        debug_assert!(self.ports[idx].reserved > 0, "drop without reservation");
                        self.ports[idx].reserved -= 1;
                        continue;
                    }
                    Some(LinkFault::Stuck) => at += STUCK_DELAY,
                    None => {}
                }
            }
            if let Some(p) = self.perturb.as_mut() {
                // Fuzzing: jitter the NoC delivery, clamped so tokens
                // within one FIFO are never reordered.
                let idx = e.fifo_idx as usize;
                at = (at + p.noc_jitter()).max(self.last_delivery[idx]);
                self.last_delivery[idx] = at;
            }
            self.events.push(Delivery {
                time: at,
                seq: self.event_seq,
                dst: e.dst,
                port: e.dst_port,
                value,
            });
        }
    }

    /// Immediately push `value` into consumer FIFOs (combinational CF emit;
    /// space must have been checked).
    fn emit_now(&mut self, node: usize, port: usize, value: i64, tick: u64) {
        let ts = tick * self.cfg.divider;
        for i in self.fan_range(node, port) {
            let e = self.fan[i];
            self.energy.noc += e.hop_energy;
            self.edge_tokens[i] += 1;
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(
                    ts,
                    TraceEvent::NocSend {
                        src: node as u32,
                        dst: e.dst,
                        hops: e.hops,
                    },
                );
            }
            let mut value = value;
            if let Some(fs) = self.fault.as_mut() {
                // Combinational forwards still move a token on the NoC, so
                // they count toward (and can be hit by) the nth-token
                // corruption — the counter tracks link-traffic totals.
                if let Some(xor) = fs.corrupt_token() {
                    value ^= xor as i64;
                }
            }
            let idx = e.fifo_idx as usize;
            self.fifo_push_back(idx, value);
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(
                    ts,
                    TraceEvent::FifoPush {
                        node: e.dst,
                        port: e.dst_port,
                        occupancy: self.ports[idx].len.min(u16::from(u8::MAX)) as u8,
                    },
                );
            }
            self.mark_dirty(e.dst as usize, tick);
        }
    }

    fn mark_dirty(&mut self, node: usize, tick: u64) {
        if self.last_fired_tick[node] == tick {
            if !self.in_next[node] {
                self.in_next[node] = true;
                self.dirty_next.push(node as u32);
            }
        } else if !self.in_now[node] {
            self.in_now[node] = true;
            self.dirty_now.push(node as u32);
        }
    }

    fn mark_dirty_next(&mut self, node: usize) {
        if !self.in_next[node] {
            self.in_next[node] = true;
            self.dirty_next.push(node as u32);
        }
    }

    /// Run to quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on memory faults, unbound params, or when the
    /// cycle cap is hit.
    pub fn run(&mut self, mem: &mut SimMemory) -> Result<RunStats, SimError> {
        for (pid, _) in self.dfg.params() {
            if self
                .bindings
                .get(pid.0 as usize)
                .copied()
                .flatten()
                .is_none()
            {
                return Err(SimError::UnboundParam(*pid));
            }
        }
        // Seed params as deliveries at t=0.
        for n in 0..self.ops.len() {
            if let Op::Param(p) = self.ops[n] {
                if self
                    .fault
                    .as_ref()
                    .is_some_and(|fs| fs.pe_dead(self.pe_of[n].0, 0))
                {
                    // A PE dead from reset never emits its param.
                    continue;
                }
                let v = self.bindings[p.0 as usize].expect("params checked above");
                self.param_emitted[n] = true;
                self.firings[n] += 1;
                self.total_firings += 1;
                self.pe_firings[self.pe_of[n].index()] += 1;
                if let Some(tr) = self.tracer.as_mut() {
                    tr.record(0, TraceEvent::Fire { node: n as u32 });
                }
                self.reserve_emit(n, 0, v, 0);
            }
        }

        // `SimConfig::validate` rejects divider == 0 up front; the engine
        // no longer silently repairs it.
        debug_assert!(self.cfg.divider >= 1, "divider must be >= 1 (validate)");
        let divider = self.cfg.divider;
        let mut t: u64 = 0;
        let mut last_time: u64 = 0;
        // Last cycle on which anything global happened: a firing, a token
        // delivery, or a memory completion. Drives the stall watchdog.
        let mut last_progress: u64 = 0;
        loop {
            if t > self.cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.cfg.max_cycles,
                });
            }
            // 1. Deliveries due now.
            let tick = t / divider;
            self.events.advance(t);
            while let Some(d) = self.events.pop_due(t) {
                let idx = self.fifo_idx(d.dst as usize, d.port as usize);
                debug_assert!(self.ports[idx].reserved > 0, "delivery without reservation");
                self.ports[idx].reserved -= 1;
                self.fifo_push_back(idx, d.value);
                if let Some(tr) = self.tracer.as_mut() {
                    tr.record(
                        t,
                        TraceEvent::FifoPush {
                            node: d.dst,
                            port: d.port,
                            occupancy: self.ports[idx].len.min(u16::from(u8::MAX)) as u8,
                        },
                    );
                }
                // Deliveries precede this tick's evaluation, so the consumer
                // can still fire this tick.
                self.mark_dirty(d.dst as usize, tick);
                last_time = last_time.max(t);
                last_progress = t;
            }
            // 2. Fabric tick (`t` is a tick boundary iff the division above
            // was exact — one division per iteration, not three).
            if t == tick * divider {
                let fired_before = self.total_firings;
                self.fabric_tick(t, tick)?;
                last_time = last_time.max(t);
                if self.total_firings > fired_before {
                    last_progress = t;
                }
            }
            // 3. Memory system — stepped lazily. A step at a cycle before
            // the cached next-event time does nothing but busy-bank wait
            // accounting, which `skip_to` reproduces in bulk, so quiet
            // cycles (whether visited for fabric work or jumped entirely)
            // skip the five-stage pipeline walk altogether.
            if self.memsys.busy() && t >= self.mem_next {
                self.memsys.skip_to(self.mem_last, t);
                self.memsys.step(t, mem);
                self.mem_last = t;
                self.mem_next = self.memsys.next_event_at(t);
                if self.process_completions(t, divider)? {
                    last_progress = t;
                }
            }
            // Watchdog: the simulation is still active but nothing has
            // fired, been delivered, or completed for a full window —
            // diagnose the livelock instead of spinning to `max_cycles`.
            if self.cfg.stall_window > 0 && t.saturating_sub(last_progress) > self.cfg.stall_window
            {
                // Flush deferred wait accounting so the report's memory
                // stats match an eagerly-stepped run.
                self.memsys.skip_to(self.mem_last, t + 1);
                self.mem_last = t;
                let report = Box::new(self.stall_report(t));
                self.record_stall(t, &report);
                return Err(SimError::Stalled {
                    window: self.cfg.stall_window,
                    report,
                });
            }
            // 4. Advance. A busy memory system no longer forces `t + 1`
            // single-stepping: jump straight to its next head-ready/bank-
            // free cycle, clamped so the watchdog still observes exactly
            // `last_progress + stall_window + 1` and the cycle cap exactly
            // `max_cycles + 1` (both provably > `t` here: the watchdog
            // check above passed and the loop-top cap check passed).
            let mut next = u64::MAX;
            if self.memsys.busy() {
                // `mem_next` is exact here: a step this cycle would have
                // recomputed it, and issues since then lowered it to at
                // most `t + 1`.
                next = self.mem_next;
                if self.cfg.stall_window > 0 {
                    next = next.min(last_progress + self.cfg.stall_window + 1);
                }
                next = next.min(self.cfg.max_cycles.saturating_add(1));
            }
            next = next.min(self.events.next_time());
            if !self.dirty_now.is_empty() || !self.dirty_next.is_empty() {
                next = next.min((tick + 1) * divider);
            }
            if next == u64::MAX {
                break;
            }
            debug_assert!(next > t, "time must advance");
            t = next;
        }

        // Quiescence. If tokens are trapped behind full consumer FIFOs or
        // a blocking cycle, no future event can ever free them: that is a
        // deadlock, not a completed run. Acyclic waiting-operand residue
        // (an unbalanced kernel) stays a normal completion and is reported
        // via `residual_tokens`.
        let residual_tokens: usize = self.ports.iter().map(|p| usize::from(p.len)).sum();
        if residual_tokens > 0 {
            let report = self.stall_report(t);
            if report.is_deadlock() {
                self.record_stall(t, &report);
                return Err(SimError::Deadlock(Box::new(report)));
            }
        }

        self.memsys.sync_cache_stats();
        let ep = self.cfg.energy;
        self.energy.fmnoc = self.memsys.stats.arbiter_forwards as f64 * ep.fmnoc_arbiter;
        self.energy.memory = self.memsys.stats.cache_hits as f64 * ep.cache_hit
            + self.memsys.stats.cache_misses as f64 * (ep.cache_hit + ep.mem_access);
        // Fold the per-edge counters into the per-link matrix (edges of a
        // PE pair may share a link; u64 sums are exact, so totals match
        // per-token increments bit for bit), then sparsify it.
        for (i, e) in self.fan.iter().enumerate() {
            self.link_tokens[e.link_idx as usize] += self.edge_tokens[i];
        }
        self.edge_tokens.fill(0);
        // Sparsify the flat link-token matrix into the heatmap list.
        let num_pes = self.pe_firings.len();
        let link_traffic: Vec<LinkTraffic> = self
            .link_tokens
            .iter()
            .enumerate()
            .filter(|&(_, &tokens)| tokens > 0)
            .map(|(i, &tokens)| {
                let (src, dst) = ((i / num_pes) as u32, (i % num_pes) as u32);
                LinkTraffic {
                    src_pe: src,
                    dst_pe: dst,
                    tokens,
                    hops: self
                        .fabric
                        .dist(PeId(src), PeId(dst))
                        .min(u32::from(u16::MAX)) as u16,
                }
            })
            .collect();
        Ok(RunStats {
            cycles: last_time,
            fabric_cycles: last_time.div_ceil(divider),
            divider,
            firings: self.total_firings,
            firings_per_node: self.firings.clone(),
            firings_per_pe: self.pe_firings.clone(),
            link_traffic,
            sinks: self.sinks.clone(),
            mem: self.memsys.stats,
            cache_hit_rate: self.memsys.cache().hit_rate(),
            load_latency_by_domain: self.load_lat.clone(),
            residual_tokens,
            energy: self.energy,
        })
    }

    fn fabric_tick(&mut self, t: u64, tick: u64) -> Result<(), SimError> {
        // Wake deferred nodes. Drained in place (the loop body never pushes
        // to `dirty_next`; re-deferrals only happen in the `dirty_now` loop
        // below, after the clear) so the buffer's capacity is reused
        // instead of being freed and re-grown every tick.
        for i in 0..self.dirty_next.len() {
            let n = self.dirty_next[i];
            self.in_next[n as usize] = false;
            if !self.in_now[n as usize] {
                self.in_now[n as usize] = true;
                self.dirty_now.push(n);
            }
        }
        self.dirty_next.clear();
        while let Some(n) = self.dirty_now.pop() {
            let n = n as usize;
            self.in_now[n] = false;
            if self.last_fired_tick[n] == tick {
                self.mark_dirty_next(n);
                continue;
            }
            if self
                .fault
                .as_ref()
                .is_some_and(|fs| fs.pe_dead(self.pe_of[n].0, t))
            {
                // Fail-stop: a dead PE never fires again. Tokens already in
                // flight (and outstanding memory responses) still drain —
                // the failure boundary is the issue point.
                continue;
            }
            if self.try_fire(n, t, tick)? {
                self.last_fired_tick[n] = tick;
                self.firings[n] += 1;
                self.total_firings += 1;
                self.pe_firings[self.pe_of[n].index()] += 1;
                if let Some(tr) = self.tracer.as_mut() {
                    tr.record(t, TraceEvent::Fire { node: n as u32 });
                }
                let op = self.ops[n];
                if op.is_arith() {
                    self.energy.alu += self.cfg.energy.alu_op;
                } else if op.is_control() {
                    self.energy.control += self.cfg.energy.control_op;
                } else if op.is_memory() {
                    self.energy.mem_issue += self.cfg.energy.mem_issue;
                }
                // More queued work? Retry next tick.
                if self.has_pending_input(n) {
                    self.mark_dirty_next(n);
                }
            }
        }
        Ok(())
    }

    /// Rough check whether a node has any buffered token left (cheap wake
    /// heuristic; a spurious wake just fails `try_fire` once).
    fn has_pending_input(&self, node: usize) -> bool {
        let s = self.port_base[node] as usize;
        let e = self.port_base[node + 1] as usize;
        self.ports[s..e].iter().any(|p| p.len > 0)
    }

    /// Drain memory completions and schedule their response deliveries.
    /// Returns whether any completion was drained (progress, for the
    /// watchdog).
    fn process_completions(&mut self, t: u64, divider: u64) -> Result<bool, SimError> {
        let mut completions = std::mem::take(&mut self.comp_scratch);
        self.memsys.drain_completions_into(&mut completions);
        let progress = !completions.is_empty();
        let cap = self.cfg.max_outstanding;
        for &c in &completions {
            if c.fault {
                return Err(SimError::Fault {
                    node: NodeId(c.node),
                });
            }
            let node = c.node as usize;
            let is_store = matches!(self.ops[node], Op::Store);
            let domain = self.fabric.domain(self.pe_of[node]);
            // Domain-bucketed load latency.
            if !is_store {
                if let Some(d) = domain {
                    let slot = &mut self.load_lat[usize::from(d.0)];
                    slot.total_latency += c.latency;
                    slot.count += 1;
                }
            }
            if let Some(tr) = self.tracer.as_mut() {
                // Back-annotated lifecycle: the bank-service event uses the
                // bank's own timestamp, the delivery uses the completion
                // time. The delivery event carries the same (domain,
                // latency) pair fed into `load_latency_by_domain` above, so
                // trace-side aggregation reproduces RunStats exactly.
                tr.record(
                    c.bank_at,
                    TraceEvent::MemBank {
                        node: c.node,
                        seq: c.seq,
                        bank: c.bank,
                        hit: c.hit,
                    },
                );
                tr.record(
                    c.time,
                    TraceEvent::MemDeliver {
                        node: c.node,
                        seq: c.seq,
                        is_store,
                        domain: domain.map_or(NO_DOMAIN, |d| d.0),
                        resp_hops: c.resp_hops,
                        latency: c.latency,
                    },
                );
            }
            // Park the completion in its issue-order ring slot. Sequence
            // numbers are globally unique, so the scan over the live
            // window cannot alias a stale slot.
            let ring = node * cap;
            let mut found = false;
            for i in 0..self.mo_len[node] as usize {
                let mut pos = self.mo_head[node] as usize + i;
                if pos >= cap {
                    pos -= cap;
                }
                if self.mo_seq[ring + pos] == c.seq {
                    self.mo_done[ring + pos] = Some(c);
                    found = true;
                    break;
                }
            }
            debug_assert!(found, "completion for unknown sequence number");
            // The freed outstanding slot may unblock the node's next
            // request even if no token arrives to wake it.
            self.mark_dirty_next(node);
            // Deliver in issue order.
            while self.mo_len[node] > 0 {
                let head = self.mo_head[node] as usize;
                let Some(done) = self.mo_done[ring + head].take() else {
                    break;
                };
                let mut nh = head + 1;
                if nh >= cap {
                    nh = 0;
                }
                self.mo_head[node] = nh as u32;
                self.mo_len[node] -= 1;
                // Fuzzing: jitter the completion before the issue-order
                // clamp below, so perturbed responses still leave the PE
                // in issue order.
                let jitter = self.perturb.as_mut().map_or(0, Perturb::mem_jitter);
                // Align delivery to the next fabric tick strictly after now,
                // never earlier than a previously scheduled response.
                let base = (done.time + jitter)
                    .max(t + 1)
                    .max(self.last_resp_time[node]);
                let tick_time = base.div_ceil(divider) * divider;
                self.last_resp_time[node] = tick_time;
                match self.ops[node] {
                    Op::Load => {
                        self.schedule_emit(node, Op::OUT_VALUE, done.value, tick_time);
                        self.schedule_emit(node, Op::LOAD_OUT_ORDER, 0, tick_time);
                    }
                    Op::Store => {
                        self.schedule_emit(node, 0, 0, tick_time);
                    }
                    _ => unreachable!("completion for non-memory node"),
                }
            }
        }
        completions.clear();
        self.comp_scratch = completions;
        Ok(progress)
    }

    /// Attempt one firing at fabric time `t` (tick index `tick`).
    fn try_fire(&mut self, n: usize, t: u64, tick: u64) -> Result<bool, SimError> {
        match self.ops[n] {
            Op::Sink(s) => {
                let i0 = self.fifo_idx(n, 0);
                let Some(v) = self.peek_idx(i0) else {
                    return Ok(false);
                };
                self.consume_peeked(i0, n, 0, tick);
                self.sinks[s.0 as usize].push(v);
                Ok(true)
            }
            Op::BinOp(k) => {
                let i0 = self.fifo_idx(n, 0);
                let Some(a) = self.peek_idx(i0) else {
                    return Ok(false);
                };
                let Some(b) = self.peek_idx(i0 + 1) else {
                    return Ok(false);
                };
                if !self.space_on(n, 0) {
                    return Ok(false);
                }
                self.consume_peeked(i0, n, 0, tick);
                self.consume_peeked(i0 + 1, n, 1, tick);
                self.reserve_emit(n, 0, k.eval(a, b), t + self.cfg.divider);
                Ok(true)
            }
            Op::Cmp(k) => {
                let i0 = self.fifo_idx(n, 0);
                let Some(a) = self.peek_idx(i0) else {
                    return Ok(false);
                };
                let Some(b) = self.peek_idx(i0 + 1) else {
                    return Ok(false);
                };
                if !self.space_on(n, 0) {
                    return Ok(false);
                }
                self.consume_peeked(i0, n, 0, tick);
                self.consume_peeked(i0 + 1, n, 1, tick);
                self.reserve_emit(n, 0, k.eval(a, b), t + self.cfg.divider);
                Ok(true)
            }
            Op::UnOp(k) => {
                let i0 = self.fifo_idx(n, 0);
                let Some(a) = self.peek_idx(i0) else {
                    return Ok(false);
                };
                if !self.space_on(n, 0) {
                    return Ok(false);
                }
                self.consume_peeked(i0, n, 0, tick);
                self.reserve_emit(n, 0, k.eval(a), t + self.cfg.divider);
                Ok(true)
            }
            Op::Steer(pol) => {
                let i0 = self.fifo_idx(n, 0);
                let Some(d) = self.peek_idx(i0) else {
                    return Ok(false);
                };
                let Some(v) = self.peek_idx(i0 + 1) else {
                    return Ok(false);
                };
                let forward = match pol {
                    SteerPolarity::OnTrue => d != 0,
                    SteerPolarity::OnFalse => d == 0,
                };
                if forward && !self.space_on(n, 0) {
                    return Ok(false);
                }
                self.consume_peeked(i0, n, 0, tick);
                self.consume_peeked(i0 + 1, n, 1, tick);
                if forward {
                    self.emit_now(n, 0, v, tick);
                }
                Ok(true)
            }
            Op::Carry => match self.state[n] {
                GateState::Fresh => {
                    let ii = self.fifo_idx(n, Op::CARRY_INIT);
                    let Some(v) = self.peek_idx(ii) else {
                        return Ok(false);
                    };
                    if !self.space_on(n, 0) {
                        return Ok(false);
                    }
                    self.consume_peeked(ii, n, Op::CARRY_INIT, tick);
                    self.state[n] = GateState::Looping;
                    self.emit_now(n, 0, v, tick);
                    Ok(true)
                }
                GateState::Looping => {
                    let id = self.fifo_idx(n, Op::CARRY_DECIDER);
                    let Some(d) = self.peek_idx(id) else {
                        return Ok(false);
                    };
                    if d != 0 {
                        let ib = self.fifo_idx(n, Op::CARRY_BACK);
                        let Some(v) = self.peek_idx(ib) else {
                            return Ok(false);
                        };
                        if !self.space_on(n, 0) {
                            return Ok(false);
                        }
                        self.consume_peeked(id, n, Op::CARRY_DECIDER, tick);
                        self.consume_peeked(ib, n, Op::CARRY_BACK, tick);
                        self.emit_now(n, 0, v, tick);
                    } else {
                        self.consume_peeked(id, n, Op::CARRY_DECIDER, tick);
                        self.state[n] = GateState::Fresh;
                    }
                    Ok(true)
                }
                GateState::Holding(_) => unreachable!("carry never holds"),
            },
            Op::Invariant => match self.state[n] {
                GateState::Fresh => {
                    let iv = self.fifo_idx(n, Op::INV_VALUE);
                    let Some(v) = self.peek_idx(iv) else {
                        return Ok(false);
                    };
                    if !self.space_on(n, 0) {
                        return Ok(false);
                    }
                    self.consume_peeked(iv, n, Op::INV_VALUE, tick);
                    self.state[n] = GateState::Holding(v);
                    self.emit_now(n, 0, v, tick);
                    Ok(true)
                }
                GateState::Holding(v) => {
                    let id = self.fifo_idx(n, Op::INV_DECIDER);
                    let Some(d) = self.peek_idx(id) else {
                        return Ok(false);
                    };
                    if d != 0 && !self.space_on(n, 0) {
                        return Ok(false);
                    }
                    self.consume_peeked(id, n, Op::INV_DECIDER, tick);
                    if d != 0 {
                        self.emit_now(n, 0, v, tick);
                    } else {
                        self.state[n] = GateState::Fresh;
                    }
                    Ok(true)
                }
                GateState::Looping => unreachable!("invariant never loops"),
            },
            Op::Select => {
                let i0 = self.fifo_idx(n, 0);
                let Some(d) = self.peek_idx(i0) else {
                    return Ok(false);
                };
                let Some(a) = self.peek_idx(i0 + 1) else {
                    return Ok(false);
                };
                let Some(b) = self.peek_idx(i0 + 2) else {
                    return Ok(false);
                };
                if !self.space_on(n, 0) {
                    return Ok(false);
                }
                self.consume_peeked(i0, n, 0, tick);
                self.consume_peeked(i0 + 1, n, 1, tick);
                self.consume_peeked(i0 + 2, n, 2, tick);
                self.emit_now(n, 0, if d != 0 { a } else { b }, tick);
                Ok(true)
            }
            Op::Mux => {
                let i0 = self.fifo_idx(n, 0);
                let Some(d) = self.peek_idx(i0) else {
                    return Ok(false);
                };
                let taken = if d != 0 { 1 } else { 2 };
                let Some(v) = self.peek_idx(i0 + taken) else {
                    return Ok(false);
                };
                if !self.space_on(n, 0) {
                    return Ok(false);
                }
                self.consume_peeked(i0, n, 0, tick);
                self.consume_peeked(i0 + taken, n, taken, tick);
                self.emit_now(n, 0, v, tick);
                Ok(true)
            }
            Op::Load => {
                let ia = self.fifo_idx(n, Op::LOAD_ADDR);
                let Some(addr) = self.peek_idx(ia) else {
                    return Ok(false);
                };
                let io = self.fifo_idx(n, Op::LOAD_ORDER);
                let order_wired = matches!(self.port_src[io], PortSrc::Wire(_));
                if order_wired && self.peek_idx(io).is_none() {
                    return Ok(false);
                }
                if self.mo_len[n] as usize >= self.cfg.max_outstanding
                    || !self.space_on(n, Op::OUT_VALUE)
                    || !self.space_on(n, Op::LOAD_OUT_ORDER)
                {
                    return Ok(false);
                }
                self.consume_peeked(ia, n, Op::LOAD_ADDR, tick);
                if order_wired {
                    self.consume_peeked(io, n, Op::LOAD_ORDER, tick);
                }
                self.reserve(n, Op::OUT_VALUE);
                self.reserve(n, Op::LOAD_OUT_ORDER);
                self.issue_mem(n, false, addr, 0, t);
                Ok(true)
            }
            Op::Store => {
                let ia = self.fifo_idx(n, Op::STORE_ADDR);
                let iv = self.fifo_idx(n, Op::STORE_VALUE);
                let (Some(addr), Some(value)) = (self.peek_idx(ia), self.peek_idx(iv)) else {
                    return Ok(false);
                };
                let io = self.fifo_idx(n, Op::STORE_ORDER);
                let order_wired = matches!(self.port_src[io], PortSrc::Wire(_));
                if order_wired && self.peek_idx(io).is_none() {
                    return Ok(false);
                }
                if self.mo_len[n] as usize >= self.cfg.max_outstanding || !self.space_on(n, 0) {
                    return Ok(false);
                }
                self.consume_peeked(ia, n, Op::STORE_ADDR, tick);
                self.consume_peeked(iv, n, Op::STORE_VALUE, tick);
                if order_wired {
                    self.consume_peeked(io, n, Op::STORE_ORDER, tick);
                }
                self.reserve(n, 0);
                self.issue_mem(n, true, addr, value, t);
                Ok(true)
            }
            Op::Param(_) => Ok(false),
        }
    }

    /// Consumer nodes of (`node`, output `port`) whose input FIFO has no
    /// free slot (the nodes holding this one's credit).
    fn credit_blockers(&self, node: usize, port: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for i in self.fan_range(node, port) {
            let e = &self.fan[i];
            let idx = e.fifo_idx as usize;
            let p = self.ports[idx];
            if usize::from(p.len) + usize::from(p.reserved) >= self.cfg.fifo_depth {
                out.push(e.dst);
            }
        }
        out
    }

    /// Read-only diagnosis of why node `n` cannot fire, mirroring the
    /// requirements `try_fire` checks. Returns `None` for idle nodes —
    /// nothing buffered, reserved, or outstanding — which is the normal
    /// state after completion.
    fn classify_stall(&self, n: usize) -> Option<StalledNode> {
        let node = self.dfg.node(NodeId(n as u32));
        let op = node.op;

        let mut ports = Vec::new();
        let mut buffered = 0usize;
        let mut reserved_total = 0usize;
        for p in 0..node.inputs.len() {
            let idx = self.fifo_idx(n, p);
            let ps = self.ports[idx];
            let (len, res) = (usize::from(ps.len), ps.reserved);
            if len > 0 || res > 0 {
                ports.push(PortOccupancy {
                    port: p as u8,
                    buffered: len,
                    reserved: res,
                });
            }
            buffered += len;
            reserved_total += res as usize;
        }
        let outstanding = self.mo_len[n] as usize;

        // Which input ports must hold a token, and which output ports need
        // consumer credit, for the node to fire in its current state.
        let mut need: Vec<usize> = Vec::new();
        let mut out_ports: Vec<usize> = Vec::new();
        let mut is_mem = false;
        match op {
            Op::Param(_) => return None,
            Op::Sink(_) => need.push(0),
            Op::BinOp(_) | Op::Cmp(_) => {
                need.extend([0, 1]);
                out_ports.push(0);
            }
            Op::UnOp(_) => {
                need.push(0);
                out_ports.push(0);
            }
            Op::Steer(pol) => {
                need.extend([0, 1]);
                if let Some(d) = self.peek(n, 0) {
                    let forward = match pol {
                        SteerPolarity::OnTrue => d != 0,
                        SteerPolarity::OnFalse => d == 0,
                    };
                    if forward {
                        out_ports.push(0);
                    }
                }
            }
            Op::Carry => match self.state[n] {
                GateState::Fresh => {
                    need.push(Op::CARRY_INIT);
                    out_ports.push(0);
                }
                GateState::Looping => {
                    need.push(Op::CARRY_DECIDER);
                    if self.peek(n, Op::CARRY_DECIDER).is_some_and(|d| d != 0) {
                        need.push(Op::CARRY_BACK);
                        out_ports.push(0);
                    }
                }
                GateState::Holding(_) => {}
            },
            Op::Invariant => match self.state[n] {
                GateState::Fresh => {
                    need.push(Op::INV_VALUE);
                    out_ports.push(0);
                }
                GateState::Holding(_) => {
                    need.push(Op::INV_DECIDER);
                    if self.peek(n, Op::INV_DECIDER).is_some_and(|d| d != 0) {
                        out_ports.push(0);
                    }
                }
                GateState::Looping => {}
            },
            Op::Select => {
                need.extend([0, 1, 2]);
                out_ports.push(0);
            }
            Op::Mux => {
                need.push(0);
                if let Some(d) = self.peek(n, 0) {
                    need.push(if d != 0 { 1 } else { 2 });
                }
                out_ports.push(0);
            }
            Op::Load => {
                is_mem = true;
                need.push(Op::LOAD_ADDR);
                if self.order_wired(n, Op::LOAD_ORDER) {
                    need.push(Op::LOAD_ORDER);
                }
                out_ports.extend([Op::OUT_VALUE, Op::LOAD_OUT_ORDER]);
            }
            Op::Store => {
                is_mem = true;
                need.extend([Op::STORE_ADDR, Op::STORE_VALUE]);
                if self.order_wired(n, Op::STORE_ORDER) {
                    need.push(Op::STORE_ORDER);
                }
                out_ports.push(0);
            }
        }

        let missing: Vec<u8> = need
            .iter()
            .filter(|&&p| self.peek(n, p).is_none())
            .map(|&p| p as u8)
            .collect();

        let (kind, blocked_on) = if is_mem && outstanding > 0 {
            // A memory op with requests in flight is waiting on the memory
            // system regardless of its operand state.
            (StallKind::MemoryOutstanding, Vec::new())
        } else if !missing.is_empty() {
            if buffered == 0 && reserved_total == 0 && outstanding == 0 {
                return None; // idle, nothing trapped
            }
            let producers = missing
                .iter()
                .filter_map(|&p| match node.inputs[p as usize] {
                    InPort::Wire { src, .. } => Some(src.0),
                    _ => None,
                })
                .collect();
            (StallKind::WaitingOperand, producers)
        } else if is_mem && outstanding >= self.cfg.max_outstanding {
            (StallKind::MemoryOutstanding, Vec::new())
        } else {
            let blockers: Vec<u32> = out_ports
                .iter()
                .flat_map(|&p| self.credit_blockers(n, p))
                .collect();
            if blockers.is_empty() {
                if need.is_empty() && buffered == 0 && reserved_total == 0 && outstanding == 0 {
                    return None; // dormant gate state with nothing queued
                }
                (StallKind::ReadyNotScheduled, Vec::new())
            } else {
                (StallKind::NoConsumerCredit, blockers)
            }
        };

        Some(StalledNode {
            node: n as u32,
            op: format!("{op:?}"),
            kind,
            ports,
            outstanding,
            missing_ports: missing,
            blocked_on,
        })
    }

    /// Record a watchdog/deadlock snapshot into the trace.
    fn record_stall(&mut self, t: u64, report: &StallReport) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(
                t,
                TraceEvent::StallSnapshot {
                    stalled_nodes: report.nodes.len().min(u32::MAX as usize) as u32,
                    residual_tokens: report.residual_tokens.min(u32::MAX as usize) as u32,
                },
            );
        }
    }

    /// Snapshot every stalled node into a [`StallReport`] at cycle `t`.
    fn stall_report(&self, t: u64) -> StallReport {
        let nodes: Vec<StalledNode> = (0..self.dfg.len())
            .filter_map(|n| self.classify_stall(n))
            .collect();
        let residual: usize = self.ports.iter().map(|p| usize::from(p.len)).sum();
        StallReport::new(t, nodes, residual)
    }

    fn issue_mem(&mut self, n: usize, is_store: bool, addr: i64, value: i64, t: u64) {
        let mut addr = addr;
        if let Some(fs) = self.fault.as_ref() {
            if addr >= 0 && fs.bank_dead(self.cfg.mem.bank_of(addr as usize) as u32, t) {
                // A failed bank faults every request addressed to it: reuse
                // the memory system's out-of-bounds fault path so the run
                // aborts with a typed `SimError::Fault` at this node.
                addr = -1;
            }
        }
        self.next_seq += 1;
        let seq = self.next_seq;
        let cap = self.cfg.max_outstanding;
        debug_assert!((self.mo_len[n] as usize) < cap, "outstanding ring overflow");
        let mut pos = self.mo_head[n] as usize + self.mo_len[n] as usize;
        if pos >= cap {
            pos -= cap;
        }
        self.mo_seq[n * cap + pos] = seq;
        self.mo_done[n * cap + pos] = None;
        self.mo_len[n] += 1;
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(
                t,
                TraceEvent::MemIssue {
                    node: n as u32,
                    seq,
                    is_store,
                },
            );
        }
        // Flush deferred wait accounting for the quiet cycles before this
        // issue while the queues still hold their pre-issue state (UPEA
        // models enqueue straight into a bank here, and back-dating that
        // occupancy would over-count waits). The issue cycle itself is
        // left to the next flush/step, which sees the post-issue state —
        // exactly what an eager per-cycle step would have seen, since the
        // fabric tick precedes the memory step within a cycle.
        self.memsys.skip_to(self.mem_last, t);
        self.mem_last = self.mem_last.max(t.saturating_sub(1));
        self.memsys.issue(
            MemRequest {
                node: n as u32,
                seq,
                is_store,
                addr,
                value,
                pe: self.pe_of[n],
                issued_at: t,
            },
            t,
        );
        // The new request becomes actionable next cycle at the earliest;
        // pull the cached next-event time forward so the lazy memsys
        // stepping in `run` wakes up for it.
        self.mem_next = self.mem_next.min(t + 1);
    }
}

#[cfg(test)]
// Unit tests use the test-only placement helper: they exercise the engine
// on hand-built graphs where the placement shape is irrelevant and pulling
// in the annealer would only add noise.
mod tests {
    use super::*;
    use crate::simple_placement;
    use nupea_ir::op::UnOpKind;

    /// addr-param -> load -> sink, with trace enabled when asked.
    fn load_graph() -> (Dfg, ParamId) {
        let mut g = Dfg::new("trace-unit");
        let (p, pp) = g.add_param("addr");
        let ld = g.add_node(Op::Load);
        g.connect(p, 0, ld, Op::LOAD_ADDR);
        let (s, _) = g.add_sink("v");
        g.connect(ld, Op::OUT_VALUE, s, 0);
        (g, pp)
    }

    #[test]
    fn unconnected_consume_is_a_typed_error_not_a_panic() {
        // A UnOp with its input left unconnected: `try_fire` never reaches
        // consume (peek returns None), so drive consume directly — the
        // defense-in-depth path must yield a structured SimError, because a
        // panic here would defeat the runner's panic isolation.
        let mut g = Dfg::new("malformed");
        let n = g.add_node(Op::UnOp(UnOpKind::Neg));
        let fabric = Fabric::monaco(8, 8, 3).unwrap();
        let pe_of = simple_placement(&g, &fabric, true);
        let mut engine = Engine::new(&g, &fabric, &pe_of, SimConfig::default());
        let err = engine.consume(n.index(), 0, 0).unwrap_err();
        assert_eq!(
            err,
            SimError::UnconnectedPort { node: n, port: 0 },
            "typed error, stable across catch_unwind boundaries"
        );
        assert!(err.to_string().contains("unconnected"));
    }

    #[test]
    fn trace_off_allocates_no_recorder_and_take_trace_is_none() {
        let (g, pp) = load_graph();
        let fabric = Fabric::monaco(8, 8, 3).unwrap();
        let pe_of = simple_placement(&g, &fabric, true);
        let params = MemParams::tiny();
        let mut mem = SimMemory::new(&params);
        let cfg = SimConfig {
            mem: params,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(&g, &fabric, &pe_of, cfg);
        engine.bind(pp, 3);
        engine.run(&mut mem).unwrap();
        assert!(engine.take_trace().is_none(), "no tracer when disabled");
    }

    #[test]
    fn trace_aggregation_matches_runstats_and_exports_valid_json() {
        let (g, pp) = load_graph();
        let fabric = Fabric::monaco(8, 8, 3).unwrap();
        let pe_of = simple_placement(&g, &fabric, true);
        let params = MemParams::tiny();
        let mut mem = SimMemory::new(&params);
        mem.write(3, 99);
        let cfg = SimConfig {
            mem: params,
            trace: TraceConfig::on(),
            ..SimConfig::default()
        };
        let mut engine = Engine::new(&g, &fabric, &pe_of, cfg);
        engine.bind(pp, 3);
        let stats = engine.run(&mut mem).unwrap();
        let trace = engine.take_trace().expect("tracer enabled");
        assert_eq!(trace.dropped, 0, "tiny run fits the ring");

        // Per-domain latency derived from MemDeliver events matches the
        // engine's own aggregation exactly.
        assert_eq!(
            trace.load_latency_by_domain(),
            stats.load_latency_by_domain,
            "trace-side aggregation must reproduce RunStats"
        );
        // Firings in the trace match the firing counters.
        let fire_count = trace
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::Fire { .. }))
            .count() as u64;
        assert_eq!(fire_count, stats.firings);
        let per_pe_sum: u64 = stats.firings_per_pe.iter().sum();
        assert_eq!(per_pe_sum, stats.firings);
        assert!(stats.active_pes() >= 3, "param, load, sink placed apart");
        assert!(!stats.link_traffic.is_empty(), "tokens moved on the NoC");

        // The exporter emits schema-valid Chrome trace JSON.
        let json = trace.to_chrome_json();
        let summary = crate::trace::validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(
            summary.complete as u64, stats.firings,
            "one slice per firing"
        );
        assert!(summary.asyncs >= 2, "mem lifecycle recorded");
    }

    #[test]
    fn tracing_does_not_change_timing() {
        let (g, pp) = load_graph();
        let fabric = Fabric::monaco(8, 8, 3).unwrap();
        let pe_of = simple_placement(&g, &fabric, true);
        let params = MemParams::tiny();
        let run = |trace: TraceConfig| {
            let mut mem = SimMemory::new(&params);
            mem.write(3, 42);
            let cfg = SimConfig {
                mem: params,
                trace,
                ..SimConfig::default()
            };
            let mut engine = Engine::new(&g, &fabric, &pe_of, cfg);
            engine.bind(pp, 3);
            engine.run(&mut mem).unwrap()
        };
        let off = run(TraceConfig::OFF);
        let on = run(TraceConfig::on());
        assert_eq!(off.cycles, on.cycles);
        assert_eq!(off.firings, on.firings);
        assert_eq!(off.sinks, on.sinks);
    }
}

//! The memory system: fabric-memory NoC arbitration, ports, banks, cache,
//! and the baseline memory models (§4.2, §6 of the paper).
//!
//! Three models are simulated:
//!
//! * [`MemoryModel::Nupea`] — Monaco's hierarchical FM-NoC. Requests from a
//!   domain-`k` LS PE traverse `k` arbiters (one forward per system cycle
//!   each, so contention queues), reach a memory port (one accept per
//!   cycle), and are serviced by the addressed bank behind the shared
//!   cache. Responses traverse a mirrored response network.
//! * [`MemoryModel::Upea`]`(n)` — uniform PE access: every request is
//!   delayed by `n` *fabric* cycles, then goes straight to the banks — no
//!   port arbitration, so baselines enjoy higher bandwidth than Monaco,
//!   exactly as §6 specifies. `Upea(0)` is the paper's **Ideal**.
//! * [`MemoryModel::NumaUpea`]`(n)` — LS PEs are randomly assigned to four
//!   NUMA domains and the address space is interleaved across them; local
//!   accesses skip the UPEA delay.
//!
//! Queues are FIFO per stage; the paper's per-input round-robin arbiters
//! are approximated by arrival order, which provides the same fairness
//! under sustained load.

use crate::memory::{Cache, MemParams, SimMemory};
use nupea_fabric::{ArbSink, Fabric, MemAccess, PeId};
use std::collections::VecDeque;

/// Which memory model to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryModel {
    /// Monaco's NUPEA fabric-memory NoC.
    Nupea,
    /// Uniform PE access with the given latency in fabric cycles.
    Upea(u32),
    /// NUMA over UPEA: remote accesses pay the UPEA latency, local ones
    /// don't. Four NUMA domains, random LS-PE assignment, line-interleaved
    /// addresses.
    NumaUpea(u32),
}

impl MemoryModel {
    /// The paper's "Ideal" baseline: uniform zero-delay PE access.
    pub const IDEAL: MemoryModel = MemoryModel::Upea(0);

    /// Short label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            MemoryModel::Nupea => "NUPEA".to_string(),
            MemoryModel::Upea(0) => "Ideal".to_string(),
            MemoryModel::Upea(n) => format!("UPEA{n}"),
            MemoryModel::NumaUpea(n) => format!("NUMA-UPEA{n}"),
        }
    }
}

impl std::fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A memory request from the fabric.
#[derive(Debug, Clone, Copy)]
pub struct MemRequest {
    /// Issuing DFG node (dense index).
    pub node: u32,
    /// Per-node sequence number for in-order delivery.
    pub seq: u64,
    /// Store (true) or load (false).
    pub is_store: bool,
    /// Word address.
    pub addr: i64,
    /// Value to store (ignored for loads).
    pub value: i64,
    /// Issuing PE.
    pub pe: PeId,
    /// Fabric-tick time of issue (system cycles).
    pub issued_at: u64,
}

/// A completed memory operation.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Issuing node.
    pub node: u32,
    /// Sequence number.
    pub seq: u64,
    /// Loaded value (0 for stores).
    pub value: i64,
    /// System-cycle completion time (response delivered at the PE).
    pub time: u64,
    /// True if the access was out of bounds.
    pub fault: bool,
    /// Total latency in system cycles (completion − issue).
    pub latency: u64,
    /// Bank that serviced the request ([`FAULT_BANK`] on the fault path,
    /// which never touches a bank).
    pub bank: u16,
    /// Whether the access hit in the shared cache (false for faults).
    pub hit: bool,
    /// System cycle at which the bank started servicing the request.
    pub bank_at: u64,
    /// Response-network arbiter hops the reply traversed back to the PE.
    pub resp_hops: u16,
}

/// [`Completion::bank`] value for faulting accesses, which bypass the
/// banks entirely.
pub const FAULT_BANK: u16 = u16::MAX;

#[derive(Debug, Clone, Copy)]
struct ReqItem {
    req: MemRequest,
    ready_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct RespItem {
    req: MemRequest,
    value: i64,
    fault: bool,
    /// Remaining response-arbiter hops (the PE's arbiter chain, walked from
    /// memory outward); delivered to the PE when it reaches zero.
    hops_left: u32,
    ready_at: u64,
    /// Servicing bank (for the completion record).
    bank: u16,
    /// Cache hit at the bank.
    hit: bool,
    /// Bank service start time.
    bank_at: u64,
}

#[derive(Debug, Clone, Default)]
struct Bank {
    queue: VecDeque<ReqItem>,
    busy_until: u64,
}

/// Bitset over the queues of one pipeline stage, tracking which are
/// non-empty. Arbitration batches over set bits in ascending index order —
/// the same order as the dense scan it replaces — so only occupied queues
/// are visited each cycle.
#[derive(Debug, Clone, Default)]
struct OccSet {
    words: Vec<u64>,
}

impl OccSet {
    fn new(len: usize) -> Self {
        OccSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Visit every set bit in ascending order (read-only walk).
    #[inline]
    fn for_each(&self, mut f: impl FnMut(usize)) {
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                f(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }
}

/// Push onto queue `i`, maintaining the stage's occupancy bit.
#[inline]
fn occ_push<T>(qs: &mut [VecDeque<T>], occ: &mut OccSet, i: usize, item: T) {
    if qs[i].is_empty() {
        occ.set(i);
    }
    qs[i].push_back(item);
}

/// Pop the head of queue `i` (must be occupied), maintaining occupancy.
#[inline]
fn occ_pop<T>(qs: &mut [VecDeque<T>], occ: &mut OccSet, i: usize) -> T {
    let item = qs[i].pop_front().expect("occupied queue");
    if qs[i].is_empty() {
        occ.clear(i);
    }
    item
}

/// Aggregate memory-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct MemSysStats {
    /// Requests issued.
    pub requests: u64,
    /// Total arbiter forwards (request + response networks).
    pub arbiter_forwards: u64,
    /// Cycles requests spent queued at banks (conflict pressure).
    pub bank_wait_cycles: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
}

/// The timed memory system.
#[derive(Debug)]
pub struct MemSys {
    model: MemoryModel,
    params: MemParams,
    cache: Cache,
    banks: Vec<Bank>,
    /// Per-arbiter request queues (parallel to `fabric.fmnoc().arbiters`).
    arb_req: Vec<VecDeque<ReqItem>>,
    /// Per-port request queues.
    port_req: Vec<VecDeque<ReqItem>>,
    /// Per-port response queues (responses reuse the port, 1 per cycle).
    port_resp: Vec<VecDeque<RespItem>>,
    /// Per-arbiter response queues (mirrored network).
    arb_resp: Vec<VecDeque<RespItem>>,
    /// Occupancy bitsets, one per stage (plus one over bank queues), so
    /// per-cycle arbitration touches only non-empty queues.
    occ_arb_req: OccSet,
    occ_port_req: OccSet,
    occ_port_resp: OccSet,
    occ_arb_resp: OccSet,
    occ_banks: OccSet,
    /// Per-stage earliest-ready caches: a conservative lower bound on the
    /// earliest cycle at which any head in the stage becomes actionable
    /// (`u64::MAX` when the stage is empty). Each stage walk is skipped
    /// O(1) while its cache lies in the future; pushes min-update the
    /// target stage's cache, and a walk recomputes it exactly from the
    /// surviving heads. A bound that is too *small* merely causes one
    /// no-op walk; it can never skip real work, so timing is unaffected.
    /// Banks carry no cache — their walk also accrues the per-cycle
    /// `bank_wait_cycles` and must run whenever `step` does.
    next_arb_req: u64,
    next_port_req: u64,
    next_port_resp: u64,
    next_arb_resp: u64,
    /// Per-PE: arbiter chain from the PE towards memory (empty for D0).
    chain_of: Vec<Vec<u32>>,
    /// Per-PE: the port requests drain into.
    port_of: Vec<u32>,
    /// Per-PE NUMA domain (NUMA model only).
    numa_of: Vec<Option<u8>>,
    numa_domains: u8,
    /// Out-of-bounds requests, completing on a dedicated path that never
    /// touches arbiters, ports, banks, or the cache — faults must not
    /// alias onto bank 0 / domain 0 and pollute conflict statistics.
    fault_q: VecDeque<ReqItem>,
    /// Fabric clock divider (converts UPEA fabric-cycle delays to system
    /// cycles).
    divider: u64,
    done: Vec<Completion>,
    /// Statistics.
    pub stats: MemSysStats,
    queued_items: usize,
}

impl MemSys {
    /// Build the memory system for a fabric + model.
    pub fn new(
        fabric: &Fabric,
        model: MemoryModel,
        params: MemParams,
        divider: u64,
        numa_seed: u64,
    ) -> Self {
        // Rejected by `SimConfig::validate`; no silent repair here.
        debug_assert!(divider >= 1, "divider must be >= 1 (validate)");
        let noc = fabric.fmnoc();
        let mut chain_of = vec![Vec::new(); fabric.num_pes()];
        let mut port_of = vec![u32::MAX; fabric.num_pes()];
        for pe in fabric.ls_pes() {
            let mut chain = Vec::new();
            let mut cur = noc.access[pe.index()].expect("LS PE has access");
            loop {
                match cur {
                    MemAccess::Direct(p) => {
                        port_of[pe.index()] = p.0;
                        break;
                    }
                    MemAccess::ViaArbiter(a) => {
                        chain.push(a.0);
                        match noc.arbiters[a.index()].downstream {
                            ArbSink::Arbiter(next) => cur = MemAccess::ViaArbiter(next),
                            ArbSink::Port(p) => {
                                port_of[pe.index()] = p.0;
                                break;
                            }
                        }
                    }
                }
            }
            chain_of[pe.index()] = chain;
        }
        MemSys {
            model,
            params,
            cache: Cache::new(&params),
            banks: vec![Bank::default(); params.banks],
            arb_req: vec![VecDeque::new(); noc.arbiters.len()],
            port_req: vec![VecDeque::new(); noc.ports.len()],
            port_resp: vec![VecDeque::new(); noc.ports.len()],
            arb_resp: vec![VecDeque::new(); noc.arbiters.len()],
            occ_arb_req: OccSet::new(noc.arbiters.len()),
            occ_port_req: OccSet::new(noc.ports.len()),
            occ_port_resp: OccSet::new(noc.ports.len()),
            occ_arb_resp: OccSet::new(noc.arbiters.len()),
            occ_banks: OccSet::new(params.banks),
            next_arb_req: u64::MAX,
            next_port_req: u64::MAX,
            next_port_resp: u64::MAX,
            next_arb_resp: u64::MAX,
            chain_of,
            port_of,
            numa_of: fabric.numa_assignment(numa_seed, 4),
            numa_domains: 4,
            fault_q: VecDeque::new(),
            divider,
            done: Vec::new(),
            stats: MemSysStats::default(),
            queued_items: 0,
        }
    }

    /// The memory model being simulated.
    pub fn model(&self) -> MemoryModel {
        self.model
    }

    /// Cache statistics source.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Inject a request (called at a fabric tick).
    pub fn issue(&mut self, req: MemRequest, now: u64) {
        self.stats.requests += 1;
        self.queued_items += 1;
        // Out-of-bounds addresses never enter the memory pipeline: they
        // complete as faults one cycle later without touching arbiters,
        // banks, or the cache, so bank-conflict and domain-latency stats
        // only ever describe real accesses.
        if req.addr < 0 || req.addr as usize >= self.params.mem_words {
            self.fault_q.push_back(ReqItem {
                req,
                ready_at: now + 1,
            });
            return;
        }
        match self.model {
            MemoryModel::Nupea => {
                let chain = &self.chain_of[req.pe.index()];
                let item = ReqItem {
                    req,
                    ready_at: now + 1,
                };
                match chain.first() {
                    Some(&a) => {
                        occ_push(&mut self.arb_req, &mut self.occ_arb_req, a as usize, item);
                        self.next_arb_req = self.next_arb_req.min(item.ready_at);
                    }
                    // D0 LS PEs connect directly to their memory port: no
                    // arbitration hops (§6), but the port still accepts one
                    // request per system cycle — the fast domain offers high
                    // bandwidth, not infinite bandwidth.
                    None => {
                        occ_push(
                            &mut self.port_req,
                            &mut self.occ_port_req,
                            self.port_of[req.pe.index()] as usize,
                            item,
                        );
                        self.next_port_req = self.next_port_req.min(item.ready_at);
                    }
                }
            }
            MemoryModel::Upea(n) => {
                let delay = u64::from(n) * self.divider;
                self.enqueue_bank(ReqItem {
                    req,
                    ready_at: now + 1 + delay,
                });
            }
            MemoryModel::NumaUpea(n) => {
                let local =
                    self.numa_of[req.pe.index()] == Some(self.numa_domain_of_addr(req.addr));
                let delay = if local {
                    0
                } else {
                    u64::from(n) * self.divider
                };
                self.enqueue_bank(ReqItem {
                    req,
                    ready_at: now + 1 + delay,
                });
            }
        }
    }

    fn numa_domain_of_addr(&self, addr: i64) -> u8 {
        debug_assert!(addr >= 0, "faults are filtered at issue");
        let line = (addr as usize) / self.params.line_words;
        (line % usize::from(self.numa_domains)) as u8
    }

    fn enqueue_bank(&mut self, item: ReqItem) {
        debug_assert!(item.req.addr >= 0, "faults are filtered at issue");
        let bank = self.params.bank_of(item.req.addr as usize);
        if self.banks[bank].queue.is_empty() {
            self.occ_banks.set(bank);
        }
        self.banks[bank].queue.push_back(item);
    }

    /// Advance one system cycle.
    pub fn step(&mut self, now: u64, mem: &mut SimMemory) {
        if self.queued_items == 0 {
            return;
        }
        // Faulting requests complete on their own path, bypassing the
        // entire pipeline.
        while let Some(&head) = self.fault_q.front() {
            if head.ready_at > now {
                break;
            }
            self.fault_q.pop_front();
            self.complete(head.req, 0, true, now, FAULT_BANK, false, now, 0);
        }
        match self.model {
            MemoryModel::Nupea => {
                self.step_arbiters_req(now);
                self.step_ports_req(now);
                self.step_banks(now, mem);
                self.step_ports_resp(now);
                self.step_arbiters_resp(now);
            }
            MemoryModel::Upea(_) | MemoryModel::NumaUpea(_) => {
                self.step_banks(now, mem);
            }
        }
    }

    fn step_arbiters_req(&mut self, now: u64) {
        if self.next_arb_req > now {
            return;
        }
        // Chain forwards re-enter `arb_req` mid-walk and min-update the
        // cache at their push sites, so reset it before the walk and fold
        // the surviving heads back in afterwards.
        self.next_arb_req = u64::MAX;
        let mut nxt = u64::MAX;
        // Word-at-a-time batch over the occupied arbiters, ascending (the
        // same visit order as the dense scan). The snapshot is safe under
        // same-cycle pushes: anything entering a queue this cycle carries
        // `ready_at = now + 1` and would be skipped anyway.
        for w in 0..self.occ_arb_req.words.len() {
            let mut bits = self.occ_arb_req.words[w];
            while bits != 0 {
                let a = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let head = *self.arb_req[a].front().expect("occupied queue");
                if head.ready_at > now {
                    nxt = nxt.min(head.ready_at);
                    continue;
                }
                occ_pop(&mut self.arb_req, &mut self.occ_arb_req, a);
                if !self.arb_req[a].is_empty() {
                    // One forward per arbiter per cycle: the backlog's head
                    // becomes eligible next cycle.
                    nxt = nxt.min(now + 1);
                }
                self.stats.arbiter_forwards += 1;
                let item = ReqItem {
                    req: head.req,
                    ready_at: now + 1,
                };
                // Forward one hop down this PE's chain.
                let chain = &self.chain_of[head.req.pe.index()];
                let pos = chain
                    .iter()
                    .position(|&x| x == a as u32)
                    .expect("request is on its own chain");
                match chain.get(pos + 1) {
                    Some(&next) => {
                        occ_push(
                            &mut self.arb_req,
                            &mut self.occ_arb_req,
                            next as usize,
                            item,
                        );
                        self.next_arb_req = self.next_arb_req.min(item.ready_at);
                    }
                    None => {
                        occ_push(
                            &mut self.port_req,
                            &mut self.occ_port_req,
                            self.port_of[head.req.pe.index()] as usize,
                            item,
                        );
                        self.next_port_req = self.next_port_req.min(item.ready_at);
                    }
                }
            }
        }
        self.next_arb_req = self.next_arb_req.min(nxt);
    }

    fn step_ports_req(&mut self, now: u64) {
        if self.next_port_req > now {
            return;
        }
        self.next_port_req = u64::MAX;
        let mut nxt = u64::MAX;
        for w in 0..self.occ_port_req.words.len() {
            let mut bits = self.occ_port_req.words[w];
            while bits != 0 {
                let p = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let head = *self.port_req[p].front().expect("occupied queue");
                if head.ready_at > now {
                    nxt = nxt.min(head.ready_at);
                    continue;
                }
                occ_pop(&mut self.port_req, &mut self.occ_port_req, p);
                if !self.port_req[p].is_empty() {
                    nxt = nxt.min(now + 1);
                }
                // Ports feed banks combinationally (banks step after ports in
                // the same cycle), so D0 sees no added hop latency.
                self.enqueue_bank(ReqItem {
                    req: head.req,
                    ready_at: now,
                });
            }
        }
        self.next_port_req = self.next_port_req.min(nxt);
    }

    fn step_banks(&mut self, now: u64, mem: &mut SimMemory) {
        for w in 0..self.occ_banks.words.len() {
            let mut bits = self.occ_banks.words[w];
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.step_one_bank(b, now, mem);
            }
        }
    }

    fn step_one_bank(&mut self, b: usize, now: u64, mem: &mut SimMemory) {
        if self.banks[b].busy_until > now {
            // Occupied by construction: work is queued behind the busy
            // bank this cycle.
            self.stats.bank_wait_cycles += 1;
            return;
        }
        let head = *self.banks[b].queue.front().expect("occupied queue");
        if head.ready_at > now {
            return;
        }
        self.banks[b].queue.pop_front();
        if self.banks[b].queue.is_empty() {
            self.occ_banks.clear(b);
        }
        let req = head.req;
        // Out-of-bounds requests were diverted to the fault path at
        // issue; everything reaching a bank is a real access. (The
        // checked read/write stays as defense in depth should a
        // caller hand `step` a memory smaller than `params`.)
        debug_assert!(req.addr >= 0, "faults are filtered at issue");
        let (value, fault) = if req.is_store {
            let ok = mem.try_write(req.addr, req.value);
            (0, !ok)
        } else {
            match mem.try_read(req.addr) {
                Some(v) => (v, false),
                None => (0, true),
            }
        };
        // Cache counters are the single source of truth for hit/miss
        // statistics; `sync_cache_stats` mirrors them into the stats
        // block (satellite fix: the old per-bank `stats.cache_hits`
        // increments silently diverged from `cache.hits` on faults).
        let hit = !fault && self.cache.access(req.addr as usize, now);
        let latency = if hit || fault {
            self.params.hit_latency
        } else {
            self.params.hit_latency + self.params.miss_latency
        };
        self.banks[b].busy_until = now + latency;
        let done_at = now + latency;
        match self.model {
            MemoryModel::Nupea if !self.chain_of[req.pe.index()].is_empty() => {
                let hops = self.chain_of[req.pe.index()].len() as u32;
                let port = self.port_of[req.pe.index()] as usize;
                occ_push(
                    &mut self.port_resp,
                    &mut self.occ_port_resp,
                    port,
                    RespItem {
                        req,
                        value,
                        fault,
                        hops_left: hops,
                        ready_at: done_at,
                        bank: b as u16,
                        hit,
                        bank_at: now,
                    },
                );
                self.next_port_resp = self.next_port_resp.min(done_at);
            }
            // D0 responses bypass the response network too.
            MemoryModel::Nupea | MemoryModel::Upea(_) | MemoryModel::NumaUpea(_) => {
                self.complete(req, value, fault, done_at, b as u16, hit, now, 0);
            }
        }
    }

    fn step_ports_resp(&mut self, now: u64) {
        if self.next_port_resp > now {
            return;
        }
        self.next_port_resp = u64::MAX;
        let mut nxt = u64::MAX;
        for w in 0..self.occ_port_resp.words.len() {
            let mut bits = self.occ_port_resp.words[w];
            while bits != 0 {
                let p = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let head = *self.port_resp[p].front().expect("occupied queue");
                if head.ready_at > now {
                    nxt = nxt.min(head.ready_at);
                    continue;
                }
                occ_pop(&mut self.port_resp, &mut self.occ_port_resp, p);
                if !self.port_resp[p].is_empty() {
                    nxt = nxt.min(now + 1);
                }
                if head.hops_left == 0 {
                    // Direct D0 response: one cycle from port to PE.
                    self.complete(
                        head.req,
                        head.value,
                        head.fault,
                        now + 1,
                        head.bank,
                        head.hit,
                        head.bank_at,
                        0,
                    );
                } else {
                    // Enter the response-arbiter chain at the memory end: the
                    // chain stored per-PE runs PE→memory, so the response walks
                    // it from the back (nearest-memory arbiter first).
                    let chain = &self.chain_of[head.req.pe.index()];
                    let entry = chain[chain.len() - 1];
                    occ_push(
                        &mut self.arb_resp,
                        &mut self.occ_arb_resp,
                        entry as usize,
                        RespItem {
                            ready_at: now + 1,
                            ..head
                        },
                    );
                    self.next_arb_resp = self.next_arb_resp.min(now + 1);
                }
            }
        }
        self.next_port_resp = self.next_port_resp.min(nxt);
    }

    fn step_arbiters_resp(&mut self, now: u64) {
        if self.next_arb_resp > now {
            return;
        }
        // Hop forwards re-enter `arb_resp` mid-walk (push sites min-update),
        // so reset before the walk, fold survivors back in at the end.
        self.next_arb_resp = u64::MAX;
        let mut nxt = u64::MAX;
        for w in 0..self.occ_arb_resp.words.len() {
            let mut bits = self.occ_arb_resp.words[w];
            while bits != 0 {
                let a = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let head = *self.arb_resp[a].front().expect("occupied queue");
                if head.ready_at > now {
                    nxt = nxt.min(head.ready_at);
                    continue;
                }
                occ_pop(&mut self.arb_resp, &mut self.occ_arb_resp, a);
                if !self.arb_resp[a].is_empty() {
                    nxt = nxt.min(now + 1);
                }
                self.stats.arbiter_forwards += 1;
                let chain = &self.chain_of[head.req.pe.index()];
                let pos = chain
                    .iter()
                    .position(|&x| x == a as u32)
                    .expect("response is on its own chain");
                if pos == 0 {
                    // Arrived at the PE's own arbiter stage: deliver.
                    let hops = chain.len() as u16;
                    self.complete(
                        head.req,
                        head.value,
                        head.fault,
                        now + 1,
                        head.bank,
                        head.hit,
                        head.bank_at,
                        hops,
                    );
                } else {
                    occ_push(
                        &mut self.arb_resp,
                        &mut self.occ_arb_resp,
                        chain[pos - 1] as usize,
                        RespItem {
                            ready_at: now + 1,
                            hops_left: head.hops_left - 1,
                            ..head
                        },
                    );
                    self.next_arb_resp = self.next_arb_resp.min(now + 1);
                }
            }
        }
        self.next_arb_resp = self.next_arb_resp.min(nxt);
    }

    #[allow(clippy::too_many_arguments)] // private lifecycle plumbing
    fn complete(
        &mut self,
        req: MemRequest,
        value: i64,
        fault: bool,
        time: u64,
        bank: u16,
        hit: bool,
        bank_at: u64,
        resp_hops: u16,
    ) {
        self.queued_items -= 1;
        self.done.push(Completion {
            node: req.node,
            seq: req.seq,
            value,
            time,
            fault,
            latency: time.saturating_sub(req.issued_at),
            bank,
            hit,
            bank_at,
            resp_hops,
        });
    }

    /// Drain completions accumulated so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        self.sync_cache_stats();
        std::mem::take(&mut self.done)
    }

    /// Drain completions into `out` (cleared first), swapping buffers so
    /// both sides keep their capacity — the engine's per-batch drain
    /// allocates nothing in steady state.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        self.sync_cache_stats();
        out.clear();
        std::mem::swap(&mut self.done, out);
    }

    /// True while requests are in flight (excluding drained completions).
    pub fn busy(&self) -> bool {
        self.queued_items > 0
    }

    /// Earliest cycle > `now` at which any queued item can make progress,
    /// or `u64::MAX` when nothing is in flight. A `step` at every cycle in
    /// `(now, next_event_at(now))` exclusive is a no-op apart from the
    /// busy-bank wait accounting that [`MemSys::skip_to`] reproduces, so
    /// the engine may jump straight to the returned cycle.
    pub fn next_event_at(&self, now: u64) -> u64 {
        if self.queued_items == 0 {
            return u64::MAX;
        }
        // The four NoC stages are covered by their earliest-ready caches —
        // conservative lower bounds, so the returned cycle may undershoot
        // the true next event. An early `step` is harmless: the stage walks
        // skip, and the bank walk accrues exactly the wait cycles that
        // `skip_to` would otherwise have accounted for that cycle.
        let mut next = self
            .next_arb_req
            .min(self.next_port_req)
            .min(self.next_port_resp)
            .min(self.next_arb_resp);
        if let Some(h) = self.fault_q.front() {
            next = next.min(h.ready_at);
        }
        self.occ_banks.for_each(|b| {
            let h = self.banks[b].queue.front().expect("occupied queue");
            next = next.min(self.banks[b].busy_until.max(h.ready_at));
        });
        next.max(now + 1)
    }

    /// Account for the cycles in `(from, to)` exclusive that the engine
    /// skipped instead of stepping. The only per-cycle side effect of a
    /// quiescent `step` is `bank_wait_cycles += 1` for each occupied bank
    /// still busy that cycle; everything else is gated on a head's
    /// `ready_at`, which [`MemSys::next_event_at`] guarantees lies at or
    /// beyond `to`.
    pub fn skip_to(&mut self, from: u64, to: u64) {
        if self.queued_items == 0 || to <= from + 1 {
            return;
        }
        for w in 0..self.occ_banks.words.len() {
            let mut bits = self.occ_banks.words[w];
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.stats.bank_wait_cycles +=
                    self.banks[b].busy_until.min(to).saturating_sub(from + 1);
            }
        }
    }

    /// Mirror the cache's hit/miss counters into the stats block. The
    /// [`Cache`] counters are the single source of truth; this snapshot
    /// exists so `MemSysStats` is self-contained once exported. Called
    /// automatically by [`MemSys::drain_completions`], so the stats block
    /// is never stale by more than one in-flight batch.
    pub fn sync_cache_stats(&mut self) {
        self.stats.cache_hits = self.cache.hits;
        self.stats.cache_misses = self.cache.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::monaco(12, 12, 3).unwrap()
    }

    fn run_until_complete(ms: &mut MemSys, mem: &mut SimMemory, start: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut t = start;
        while ms.busy() {
            ms.step(t, mem);
            out.extend(ms.drain_completions());
            t += 1;
            assert!(t < start + 10_000, "memory system livelock");
        }
        out
    }

    #[test]
    fn d0_load_is_fast_and_far_domain_is_slower() {
        let f = fabric();
        let p = MemParams::tiny();
        let mut mem = SimMemory::new(&p);
        mem.write(5, 77);

        let latency_from = |pe: PeId| {
            let mut ms = MemSys::new(&f, MemoryModel::Nupea, p, 1, 0);
            let mut m = mem.clone();
            ms.issue(
                MemRequest {
                    node: 0,
                    seq: 0,
                    is_store: false,
                    addr: 5,
                    value: 0,
                    pe,
                    issued_at: 0,
                },
                0,
            );
            let done = run_until_complete(&mut ms, &mut m, 0);
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].value, 77);
            assert!(!done[0].fault);
            done[0].latency
        };

        let d0 = latency_from(f.at(1, 11));
        let d1 = latency_from(f.at(1, 8));
        let d3 = latency_from(f.at(1, 0));
        assert!(d0 < d1, "D0 ({d0}) must beat D1 ({d1})");
        assert!(d1 < d3, "D1 ({d1}) must beat D3 ({d3})");
        // D0 sees no fabric-memory NoC delay at all (§6): inject + miss.
        assert_eq!(d0, 1 + p.hit_latency + p.miss_latency);
        // Each farther domain adds arbitration on both request and response
        // paths; D3 pays at least 6 more cycles than D0.
        assert!(d3 - d0 >= 6, "d3={d3} d0={d0}");
    }

    #[test]
    fn upea_delay_scales_with_n_and_divider() {
        let f = fabric();
        let p = MemParams::tiny();
        let lat = |n: u32, divider: u64| {
            let mut ms = MemSys::new(&f, MemoryModel::Upea(n), p, divider, 0);
            let mut mem = SimMemory::new(&p);
            ms.issue(
                MemRequest {
                    node: 0,
                    seq: 0,
                    is_store: false,
                    addr: 0,
                    value: 0,
                    pe: f.at(1, 0),
                    issued_at: 0,
                },
                0,
            );
            run_until_complete(&mut ms, &mut mem, 0)[0].latency
        };
        assert_eq!(lat(2, 1) - lat(0, 1), 2, "2 fabric cycles at divider 1");
        assert_eq!(lat(2, 2) - lat(0, 2), 4, "2 fabric cycles at divider 2");
        assert_eq!(lat(4, 1) - lat(0, 1), 4);
    }

    #[test]
    fn numa_local_access_skips_delay() {
        let f = fabric();
        let p = MemParams::tiny();
        let mut ms = MemSys::new(&f, MemoryModel::NumaUpea(4), p, 1, 42);
        let pe = f.at(1, 0);
        let pe_domain = ms.numa_of[pe.index()].unwrap();
        // Find a local and a remote address (line-granular interleave).
        let local_addr = (0..64)
            .map(|l| (l * p.line_words) as i64)
            .find(|&a| ms.numa_domain_of_addr(a) == pe_domain)
            .unwrap();
        let remote_addr = (0..64)
            .map(|l| (l * p.line_words) as i64)
            .find(|&a| ms.numa_domain_of_addr(a) != pe_domain)
            .unwrap();
        let mut mem = SimMemory::new(&p);
        ms.issue(
            MemRequest {
                node: 0,
                seq: 0,
                is_store: false,
                addr: local_addr,
                value: 0,
                pe,
                issued_at: 0,
            },
            0,
        );
        let local_lat = run_until_complete(&mut ms, &mut mem, 0)[0].latency;
        ms.issue(
            MemRequest {
                node: 0,
                seq: 1,
                is_store: false,
                addr: remote_addr,
                value: 0,
                pe,
                issued_at: 100,
            },
            100,
        );
        let remote_lat = run_until_complete(&mut ms, &mut mem, 100)[0].latency;
        assert_eq!(remote_lat - local_lat, 4, "remote pays 4 fabric cycles");
    }

    #[test]
    fn stores_write_memory_and_complete() {
        let f = fabric();
        let p = MemParams::tiny();
        let mut ms = MemSys::new(&f, MemoryModel::Nupea, p, 1, 0);
        let mut mem = SimMemory::new(&p);
        ms.issue(
            MemRequest {
                node: 3,
                seq: 0,
                is_store: true,
                addr: 9,
                value: 123,
                pe: f.at(1, 11),
                issued_at: 0,
            },
            0,
        );
        let done = run_until_complete(&mut ms, &mut mem, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(mem.read(9), 123);
    }

    #[test]
    fn out_of_bounds_faults() {
        let f = fabric();
        let p = MemParams::tiny();
        let mut ms = MemSys::new(&f, MemoryModel::IDEAL, p, 1, 0);
        let mut mem = SimMemory::new(&p);
        ms.issue(
            MemRequest {
                node: 0,
                seq: 0,
                is_store: false,
                addr: -3,
                value: 0,
                pe: f.at(1, 11),
                issued_at: 0,
            },
            0,
        );
        let done = run_until_complete(&mut ms, &mut mem, 0);
        assert!(done[0].fault);
        assert_eq!(done[0].bank, FAULT_BANK, "faults never touch a bank");
    }

    /// Faulting accesses (negative and past-the-end, loads and stores,
    /// under every model) must bypass arbiters, banks, and the cache
    /// entirely — they used to clamp onto bank 0 / NUMA domain 0 and
    /// pollute conflict statistics.
    #[test]
    fn faults_bypass_banks_and_leave_stats_clean() {
        let f = fabric();
        let p = MemParams::tiny();
        for model in [
            MemoryModel::Nupea,
            MemoryModel::IDEAL,
            MemoryModel::Upea(3),
            MemoryModel::NumaUpea(2),
        ] {
            let mut ms = MemSys::new(&f, model, p, 1, 0);
            let mut mem = SimMemory::new(&p);
            // A far-domain PE so a real NUPEA request would pay arbiter
            // forwards — a fault must not.
            let pe = f.at(1, 0);
            for (seq, (addr, is_store)) in [
                (-3i64, false),
                (p.mem_words as i64, false),
                (-1, true),
                (i64::MAX, true),
            ]
            .into_iter()
            .enumerate()
            {
                ms.issue(
                    MemRequest {
                        node: 0,
                        seq: seq as u64,
                        is_store,
                        addr,
                        value: 1,
                        pe,
                        issued_at: 0,
                    },
                    0,
                );
            }
            let done = run_until_complete(&mut ms, &mut mem, 0);
            assert_eq!(done.len(), 4, "{model}: all faults complete");
            for c in &done {
                assert!(c.fault, "{model}");
                assert_eq!(c.bank, FAULT_BANK, "{model}");
                assert!(!c.hit, "{model}");
            }
            assert_eq!(
                ms.stats.requests, 4,
                "{model}: faults still count as requests"
            );
            assert_eq!(ms.stats.arbiter_forwards, 0, "{model}: no arbitration");
            assert_eq!(ms.stats.bank_wait_cycles, 0, "{model}: no bank queueing");
            assert_eq!(
                ms.cache().hits + ms.cache().misses,
                0,
                "{model}: no cache access"
            );
            assert_eq!(ms.stats.cache_hits + ms.stats.cache_misses, 0, "{model}");
        }
    }

    /// The cache counters are the single source of truth: after any mix of
    /// faulting and real accesses, the stats block exactly mirrors them
    /// (the old dual accounting diverged on fault-path accesses).
    #[test]
    fn cache_stats_never_diverge_from_cache_counters() {
        let f = fabric();
        let p = MemParams::tiny();
        let mut ms = MemSys::new(&f, MemoryModel::Nupea, p, 1, 0);
        let mut mem = SimMemory::new(&p);
        let pe = f.at(1, 11);
        // Interleave real accesses (some hitting, some missing) and faults.
        let addrs: &[i64] = &[0, 1, -5, p.line_words as i64, 0, -1, 1, 4096];
        for (seq, &addr) in addrs.iter().enumerate() {
            ms.issue(
                MemRequest {
                    node: 0,
                    seq: seq as u64,
                    is_store: seq % 3 == 0,
                    addr,
                    value: 7,
                    pe,
                    issued_at: seq as u64 * 40,
                },
                seq as u64 * 40,
            );
            let done = run_until_complete(&mut ms, &mut mem, seq as u64 * 40);
            assert_eq!(done.len(), 1);
            // After every drain the mirrored stats match the live counters.
            assert_eq!(ms.stats.cache_hits, ms.cache().hits, "after {addr}");
            assert_eq!(ms.stats.cache_misses, ms.cache().misses, "after {addr}");
        }
        let faults = addrs
            .iter()
            .filter(|&&a| a < 0 || a as usize >= p.mem_words)
            .count() as u64;
        assert_eq!(
            ms.cache().hits + ms.cache().misses,
            addrs.len() as u64 - faults,
            "every non-faulting access touches the cache exactly once"
        );
        // Per-completion hit flags agree with the aggregate too.
        assert!(ms.stats.cache_hits > 0 && ms.stats.cache_misses > 0);
    }

    #[test]
    fn arbiter_contention_serializes_requests() {
        // Two D3 PEs in the same row share the D3 arbiter: their requests
        // cannot both advance in the same cycle.
        let f = fabric();
        let p = MemParams::tiny();
        let mut ms = MemSys::new(&f, MemoryModel::Nupea, p, 1, 0);
        let mut mem = SimMemory::new(&p);
        for (i, col) in [0usize, 1].into_iter().enumerate() {
            ms.issue(
                MemRequest {
                    node: i as u32,
                    seq: 0,
                    is_store: false,
                    addr: (i * p.line_words * p.banks) as i64, // distinct banks? same bank class — distinct lines anyway
                    value: 0,
                    pe: f.at(1, col),
                    issued_at: 0,
                },
                0,
            );
        }
        let done = run_until_complete(&mut ms, &mut mem, 0);
        assert_eq!(done.len(), 2);
        let mut lats: Vec<u64> = done.iter().map(|c| c.latency).collect();
        lats.sort_unstable();
        assert!(
            lats[1] > lats[0],
            "second request must queue behind the first: {lats:?}"
        );
    }

    #[test]
    fn d0_ports_serialize_but_do_not_add_latency() {
        // Two D0 PEs on the same row use different direct ports: their
        // single requests proceed independently. Two requests from the SAME
        // PE in the same cycle are impossible (one issue per tick), but two
        // PEs sharing one port (D0 shared with the D1 arbiter) serialize.
        let f = fabric();
        let p = MemParams::tiny();
        let mut ms = MemSys::new(&f, MemoryModel::Nupea, p, 1, 0);
        let mut mem = SimMemory::new(&p);
        // D0 PE at col 9 shares its port with D1's arbiter; issue one from
        // each and check both complete, the D1 one strictly later.
        let d0_pe = f.at(1, 9);
        let d1_pe = f.at(1, 8);
        assert_eq!(f.fmnoc().port_of(d0_pe), f.fmnoc().port_of(d1_pe));
        for (i, pe) in [d0_pe, d1_pe].into_iter().enumerate() {
            ms.issue(
                MemRequest {
                    node: i as u32,
                    seq: i as u64,
                    is_store: false,
                    addr: (i * p.line_words) as i64,
                    value: 0,
                    pe,
                    issued_at: 0,
                },
                0,
            );
        }
        let done = run_until_complete(&mut ms, &mut mem, 0);
        assert_eq!(done.len(), 2);
        let d0_lat = done.iter().find(|c| c.node == 0).unwrap().latency;
        let d1_lat = done.iter().find(|c| c.node == 1).unwrap().latency;
        assert!(d1_lat > d0_lat, "D1 pays arbitration: {d0_lat} vs {d1_lat}");
    }

    #[test]
    fn bank_conflicts_serialize_same_bank_requests() {
        let f = fabric();
        let p = MemParams::tiny();
        let mut ms = MemSys::new(&f, MemoryModel::IDEAL, p, 1, 0);
        let mut mem = SimMemory::new(&p);
        // Same line => same bank; issue 4 requests at once from 4 D0 PEs.
        for i in 0..4u32 {
            ms.issue(
                MemRequest {
                    node: i,
                    seq: u64::from(i),
                    is_store: false,
                    addr: i64::from(i), // same line, same bank
                    value: 0,
                    pe: f.at(1 + 2 * (i as usize % 3), 11),
                    issued_at: 0,
                },
                0,
            );
        }
        let done = run_until_complete(&mut ms, &mut mem, 0);
        let mut lats: Vec<u64> = done.iter().map(|c| c.latency).collect();
        lats.sort_unstable();
        // First is a miss (hit+miss latency), later ones queue behind the
        // busy bank but hit in the cache.
        assert_eq!(lats[0], 1 + p.hit_latency + p.miss_latency);
        assert!(lats[3] > lats[0], "bank conflicts must queue: {lats:?}");
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let f = fabric();
        let p = MemParams::tiny();
        let mut ms = MemSys::new(&f, MemoryModel::IDEAL, p, 1, 0);
        let mut mem = SimMemory::new(&p);
        for i in 0..4u32 {
            ms.issue(
                MemRequest {
                    node: i,
                    seq: u64::from(i),
                    is_store: false,
                    addr: (i as usize * p.line_words) as i64, // distinct banks
                    value: 0,
                    pe: f.at(1, 11),
                    issued_at: 0,
                },
                0,
            );
        }
        let done = run_until_complete(&mut ms, &mut mem, 0);
        let lats: Vec<u64> = done.iter().map(|c| c.latency).collect();
        let expect = 1 + p.hit_latency + p.miss_latency;
        assert!(
            lats.iter().all(|&l| l == expect),
            "independent banks must not queue: {lats:?}"
        );
    }

    #[test]
    fn numa_assignment_spreads_addresses() {
        let f = fabric();
        let p = MemParams::tiny();
        let ms = MemSys::new(&f, MemoryModel::NumaUpea(2), p, 1, 3);
        let mut per_domain = [0usize; 4];
        for line in 0..256 {
            let addr = (line * p.line_words) as i64;
            per_domain[ms.numa_domain_of_addr(addr) as usize] += 1;
        }
        assert_eq!(per_domain.iter().sum::<usize>(), 256);
        for (d, &n) in per_domain.iter().enumerate() {
            assert_eq!(n, 64, "line-interleave must be uniform (domain {d})");
        }
    }

    #[test]
    fn cache_hit_is_faster_than_miss() {
        let f = fabric();
        let p = MemParams::tiny();
        let mut ms = MemSys::new(&f, MemoryModel::IDEAL, p, 1, 0);
        let mut mem = SimMemory::new(&p);
        let pe = f.at(1, 11);
        ms.issue(
            MemRequest {
                node: 0,
                seq: 0,
                is_store: false,
                addr: 0,
                value: 0,
                pe,
                issued_at: 0,
            },
            0,
        );
        let miss = run_until_complete(&mut ms, &mut mem, 0)[0].latency;
        ms.issue(
            MemRequest {
                node: 0,
                seq: 1,
                is_store: false,
                addr: 1,
                value: 0,
                pe,
                issued_at: 50,
            },
            50,
        );
        let hit = run_until_complete(&mut ms, &mut mem, 50)[0].latency;
        assert_eq!(miss - hit, p.miss_latency);
        assert_eq!(ms.cache().hits, 1);
        assert_eq!(ms.cache().misses, 1);
    }
}

//! # nupea-sim — cycle-level simulator for NUPEA spatial dataflow fabrics
//!
//! Simulates a placed dataflow graph on a [`Fabric`](nupea_fabric::Fabric)
//! with Monaco's microarchitectural model (§4/§6 of the paper):
//!
//! * [`engine`] — the timed ordered-dataflow engine: per-operand token
//!   FIFOs, credit-based backpressure, one-cycle arithmetic, combinational
//!   control flow, clock-divided fabric vs. full-rate memory system.
//! * [`memsys`] — the fabric-memory NoC with per-row hierarchical
//!   arbitration (NUPEA), plus the UPEA-n / NUMA-UPEA-n / Ideal baseline
//!   models of §6.
//! * [`memory`] — word-addressed memory, bump allocator, banked shared
//!   memory-side cache.
//!
//! The simulator executes *real data*: kernels allocate inputs in
//! [`SimMemory`], and results are validated against reference
//! implementations and against the untimed interpreter of `nupea-ir`.
//!
//! # Example
//!
//! ```
//! use nupea_fabric::Fabric;
//! use nupea_ir::graph::Dfg;
//! use nupea_ir::op::Op;
//! use nupea_pnr::{place::place, Netlist, PlaceConfig};
//! use nupea_sim::{Engine, MemParams, MemoryModel, SimConfig, SimMemory};
//!
//! // addr -> load -> sink
//! let mut g = Dfg::new("demo");
//! let (p, pp) = g.add_param("addr");
//! let ld = g.add_node(Op::Load);
//! g.connect(p, 0, ld, Op::LOAD_ADDR);
//! let (s, _) = g.add_sink("v");
//! g.connect(ld, Op::OUT_VALUE, s, 0);
//!
//! let fabric = Fabric::monaco(8, 8, 3)?;
//! let netlist = Netlist::from_dfg(&g);
//! let pe_of = place(&fabric, &netlist, &PlaceConfig::default())?.pe_of;
//! let params = MemParams::tiny();
//! let mut mem = SimMemory::new(&params);
//! mem.write(3, 99);
//!
//! let mut cfg = SimConfig::default();
//! cfg.mem = params;
//! cfg.model = MemoryModel::Nupea;
//! let mut engine = Engine::new(&g, &fabric, &pe_of, cfg);
//! engine.bind(pp, 3);
//! let stats = engine.run(&mut mem)?;
//! assert_eq!(stats.sinks[0], vec![99]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod energy;
pub mod engine;
pub mod fault;
pub mod memory;
pub mod memsys;
pub mod perturb;
pub mod trace;
pub mod watchdog;

pub use energy::{EnergyBreakdown, EnergyParams};
pub use engine::{ConfigError, DomainLatency, Engine, LinkTraffic, RunStats, SimConfig, SimError};
pub use fault::{FaultClasses, FaultConfig, FaultContext, FaultKind, FaultPlan, STUCK_DELAY};
pub use memory::{Cache, MemParams, SimMemory};
pub use memsys::{Completion, MemRequest, MemSys, MemSysStats, MemoryModel};
pub use perturb::PerturbConfig;
pub use trace::{
    validate_chrome_trace, ChromeTraceSummary, NullTracer, RingRecorder, TraceBuffer, TraceConfig,
    TraceEvent, TraceMeta, Tracer,
};
pub use watchdog::{PortOccupancy, StallKind, StallReport, StalledNode};

#[cfg(test)]
use nupea_fabric::{Fabric, PeId, PeKind};
#[cfg(test)]
use nupea_ir::graph::Dfg;

/// A deliberately simple placement for simulator-internal tests that
/// bypass PnR: memory operations go onto LS PEs (fastest domains first
/// when `fast`, slowest first otherwise), everything else fills remaining
/// PEs row-major.
///
/// Test-only on purpose: real flows go through `nupea_pnr::place` (or the
/// full `nupea_pnr::pnr` pipeline), which enforces slot capacities,
/// returns typed errors past capacity, and understands placement
/// heuristics. This helper survives because latency-model tests need a
/// *controlled* fast-vs-slow-domain placement the annealer would never
/// produce (e.g. "slow placement costs more fabric-memory NoC energy").
#[cfg(test)]
pub(crate) fn simple_placement(dfg: &Dfg, fabric: &Fabric, fast: bool) -> Vec<PeId> {
    let mut ls_order = fabric.ls_pref_order();
    if !fast {
        ls_order.reverse();
    }
    let mut ls_iter = ls_order.into_iter().cycle();
    let all_pes: Vec<PeId> = fabric.pes().collect();
    let mut others = all_pes.into_iter().cycle();
    dfg.iter()
        .map(|(_, n)| {
            if n.op.is_memory() {
                ls_iter.next().expect("fabric has LS PEs")
            } else {
                others.next().expect("fabric has PEs")
            }
        })
        .collect()
}

/// Sanity check a [`simple_placement`]: memory ops on LS PEs, length
/// matches. (Placements from `nupea_pnr::place` are validated at
/// construction and never need this.)
#[cfg(test)]
pub(crate) fn check_placement(dfg: &Dfg, fabric: &Fabric, pe_of: &[PeId]) -> bool {
    pe_of.len() == dfg.len()
        && dfg
            .iter()
            .all(|(id, n)| !n.op.is_memory() || fabric.kind(pe_of[id.index()]) == PeKind::LoadStore)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nupea_ir::interp::Interp;
    use nupea_ir::op::{BinOpKind, CmpKind, Op, SteerPolarity};
    use nupea_ir::ParamId;

    /// `for i in 0..n { out[i] = in[i] * 3 }`, returning (graph, params).
    fn scale_kernel() -> (Dfg, ParamId, ParamId, ParamId) {
        let mut g = Dfg::new("scale");
        let (n_p, n_pid) = g.add_param("n");
        let (src_p, src_pid) = g.add_param("src");
        let (dst_p, dst_pid) = g.add_param("dst");
        let (zero_p, _) = g.add_param("zero");

        let i_carry = g.add_node(Op::Carry);
        g.connect(zero_p, 0, i_carry, Op::CARRY_INIT);
        let n_inv = g.add_node(Op::Invariant);
        g.connect(n_p, 0, n_inv, Op::INV_VALUE);
        let cond = g.add_node(Op::Cmp(CmpKind::Lt));
        g.connect(i_carry, 0, cond, 0);
        g.connect(n_inv, 0, cond, 1);
        g.connect(cond, 0, i_carry, Op::CARRY_DECIDER);
        g.connect(cond, 0, n_inv, Op::INV_DECIDER);

        let src_inv = g.add_node(Op::Invariant);
        g.connect(src_p, 0, src_inv, Op::INV_VALUE);
        g.connect(cond, 0, src_inv, Op::INV_DECIDER);
        let dst_inv = g.add_node(Op::Invariant);
        g.connect(dst_p, 0, dst_inv, Op::INV_VALUE);
        g.connect(cond, 0, dst_inv, Op::INV_DECIDER);

        let i_body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.connect(cond, 0, i_body, 0);
        g.connect(i_carry, 0, i_body, 1);
        let src_body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.connect(cond, 0, src_body, 0);
        g.connect(src_inv, 0, src_body, 1);
        let dst_body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.connect(cond, 0, dst_body, 0);
        g.connect(dst_inv, 0, dst_body, 1);

        let i_next = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(i_body, 0, i_next, 0);
        g.set_imm(i_next, 1, 1);
        g.connect(i_next, 0, i_carry, Op::CARRY_BACK);

        let raddr = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(src_body, 0, raddr, 0);
        g.connect(i_body, 0, raddr, 1);
        let ld = g.add_node(Op::Load);
        g.connect(raddr, 0, ld, Op::LOAD_ADDR);
        let scaled = g.add_node(Op::BinOp(BinOpKind::Mul));
        g.connect(ld, Op::OUT_VALUE, scaled, 0);
        g.set_imm(scaled, 1, 3);
        let waddr = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(dst_body, 0, waddr, 0);
        g.connect(i_body, 0, waddr, 1);
        let st = g.add_node(Op::Store);
        g.connect(waddr, 0, st, Op::STORE_ADDR);
        g.connect(scaled, 0, st, Op::STORE_VALUE);

        g.validate().expect("valid kernel");
        (g, n_pid, src_pid, dst_pid)
    }

    fn bind_all(engine: &mut Engine<'_>, g: &Dfg, n: i64, src: i64, dst: i64) {
        for (pid, name) in g.params() {
            let v = match name.as_str() {
                "n" => n,
                "src" => src,
                "dst" => dst,
                _ => 0,
            };
            engine.bind(*pid, v);
        }
    }

    fn run_model(model: MemoryModel, divider: u64, n: i64, fast: bool) -> (RunStats, Vec<i64>) {
        let (g, _, _, _) = scale_kernel();
        let fabric = Fabric::monaco(12, 12, 3).unwrap();
        let pe_of = simple_placement(&g, &fabric, fast);
        assert!(check_placement(&g, &fabric, &pe_of));
        let params = MemParams::tiny();
        let mut mem = SimMemory::new(&params);
        let src = mem.alloc_init(&(0..n).map(|i| i * 7 + 1).collect::<Vec<_>>());
        let dst = mem.alloc(n as usize);
        let cfg = SimConfig {
            mem: params,
            model,
            divider,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(&g, &fabric, &pe_of, cfg);
        bind_all(&mut engine, &g, n, src, dst);
        let stats = engine.run(&mut mem).expect("run ok");
        let out = mem.slice(dst, n as usize).to_vec();
        (stats, out)
    }

    #[test]
    fn timed_run_matches_reference_output() {
        for n in [0i64, 1, 5, 33] {
            let (stats, out) = run_model(MemoryModel::Nupea, 2, n, true);
            let expected: Vec<i64> = (0..n).map(|i| (i * 7 + 1) * 3).collect();
            assert_eq!(out, expected, "n={n}");
            assert_eq!(stats.residual_tokens, 0, "balanced at n={n}");
        }
    }

    #[test]
    fn timed_engine_agrees_with_untimed_interp() {
        let (g, n_pid, src_pid, dst_pid) = scale_kernel();
        let n = 17i64;
        // Untimed.
        let params = MemParams::tiny();
        let mut mem_a = SimMemory::new(&params);
        let src = mem_a.alloc_init(&(0..n).map(|i| i * i).collect::<Vec<_>>());
        let dst = mem_a.alloc(n as usize);
        let mem_b_init = mem_a.clone();
        let mut it = Interp::new(&g);
        for (pid, _) in g.params() {
            it.bind(*pid, 0);
        }
        it.bind(n_pid, n).bind(src_pid, src).bind(dst_pid, dst);
        let r = it.run(mem_a.words_mut()).unwrap();
        assert!(r.is_balanced());
        // Timed.
        let fabric = Fabric::monaco(12, 12, 3).unwrap();
        let pe_of = simple_placement(&g, &fabric, true);
        let mut mem_b = mem_b_init;
        let mut engine = Engine::new(
            &g,
            &fabric,
            &pe_of,
            SimConfig {
                mem: params,
                ..SimConfig::default()
            },
        );
        bind_all(&mut engine, &g, n, src, dst);
        let stats = engine.run(&mut mem_b).unwrap();
        assert_eq!(mem_a.words(), mem_b.words(), "final memory must agree");
        assert_eq!(stats.residual_tokens, 0);
    }

    #[test]
    fn fast_domain_placement_beats_slow_placement() {
        let n = 48;
        let (fast, _) = run_model(MemoryModel::Nupea, 2, n, true);
        let (slow, _) = run_model(MemoryModel::Nupea, 2, n, false);
        assert!(
            fast.cycles < slow.cycles,
            "D0 placement ({}) must beat far-domain placement ({})",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn upea_latency_sweep_is_monotone() {
        let n = 48;
        let mut prev = 0;
        for lat in 0..=4 {
            let (stats, out) = run_model(MemoryModel::Upea(lat), 2, n, true);
            let expected: Vec<i64> = (0..n).map(|i| (i * 7 + 1) * 3).collect();
            assert_eq!(out, expected);
            assert!(
                stats.cycles >= prev,
                "UPEA{lat} ({}) regressed below UPEA{} ({prev})",
                stats.cycles,
                lat - 1
            );
            prev = stats.cycles;
        }
    }

    #[test]
    fn numa_beats_pure_upea_on_average() {
        let n = 64;
        let (upea, _) = run_model(MemoryModel::Upea(3), 2, n, true);
        let (numa, _) = run_model(MemoryModel::NumaUpea(3), 2, n, true);
        assert!(
            numa.cycles <= upea.cycles,
            "NUMA ({}) should not lose to UPEA ({}): local hits skip delay",
            numa.cycles,
            upea.cycles
        );
    }

    #[test]
    fn divider_two_is_slower_in_system_cycles() {
        let n = 32;
        let (d1, _) = run_model(MemoryModel::Nupea, 1, n, true);
        let (d2, _) = run_model(MemoryModel::Nupea, 2, n, true);
        assert!(d2.cycles > d1.cycles);
        // But not 2x: memory runs at full rate under divider 2 (§6).
        assert!(
            d2.cycles < d1.cycles * 2,
            "memory at full rate should soften the divider: d1={} d2={}",
            d1.cycles,
            d2.cycles
        );
    }

    #[test]
    fn tiny_fifos_still_produce_correct_results() {
        let (g, n_pid, src_pid, dst_pid) = scale_kernel();
        let n = 12i64;
        let fabric = Fabric::monaco(12, 12, 3).unwrap();
        let pe_of = simple_placement(&g, &fabric, true);
        let params = MemParams::tiny();
        let mut mem = SimMemory::new(&params);
        let src = mem.alloc_init(&(0..n).collect::<Vec<_>>());
        let dst = mem.alloc(n as usize);
        let mut engine = Engine::new(
            &g,
            &fabric,
            &pe_of,
            SimConfig {
                mem: params,
                fifo_depth: 1,
                max_outstanding: 1,
                ..SimConfig::default()
            },
        );
        for (pid, _) in g.params() {
            engine.bind(*pid, 0);
        }
        engine.bind(n_pid, n).bind(src_pid, src).bind(dst_pid, dst);
        let stats = engine.run(&mut mem).unwrap();
        let expected: Vec<i64> = (0..n).map(|i| i * 3).collect();
        assert_eq!(mem.slice(dst, n as usize), &expected[..]);
        assert_eq!(stats.residual_tokens, 0);
    }

    #[test]
    fn deeper_fifos_do_not_hurt_performance() {
        let n = 48;
        let shallow = {
            let (g, n_pid, src_pid, dst_pid) = scale_kernel();
            let fabric = Fabric::monaco(12, 12, 3).unwrap();
            let pe_of = simple_placement(&g, &fabric, true);
            let params = MemParams::tiny();
            let mut mem = SimMemory::new(&params);
            let src = mem.alloc_init(&(0..n).collect::<Vec<_>>());
            let dst = mem.alloc(n as usize);
            let mut e = Engine::new(
                &g,
                &fabric,
                &pe_of,
                SimConfig {
                    mem: params,
                    fifo_depth: 2,
                    ..SimConfig::default()
                },
            );
            for (pid, _) in g.params() {
                e.bind(*pid, 0);
            }
            e.bind(n_pid, n).bind(src_pid, src).bind(dst_pid, dst);
            e.run(&mut mem).unwrap().cycles
        };
        let (deep, _) = run_model(MemoryModel::Nupea, 2, n, true);
        assert!(
            deep.cycles <= shallow,
            "deep fifos should not slow things down: deep={} shallow={shallow}",
            deep.cycles
        );
    }

    #[test]
    fn unbound_param_errors() {
        let (g, _, _, _) = scale_kernel();
        let fabric = Fabric::monaco(8, 8, 3).unwrap();
        let pe_of = simple_placement(&g, &fabric, true);
        let params = MemParams::tiny();
        let mut mem = SimMemory::new(&params);
        let mut engine = Engine::new(
            &g,
            &fabric,
            &pe_of,
            SimConfig {
                mem: params,
                ..SimConfig::default()
            },
        );
        assert!(matches!(
            engine.run(&mut mem),
            Err(SimError::UnboundParam(_))
        ));
    }

    #[test]
    fn oob_access_faults() {
        let mut g = Dfg::new("oob");
        let (p, pp) = g.add_param("addr");
        let ld = g.add_node(Op::Load);
        g.connect(p, 0, ld, Op::LOAD_ADDR);
        let (s, _) = g.add_sink("v");
        g.connect(ld, 0, s, 0);
        let fabric = Fabric::monaco(8, 8, 3).unwrap();
        let pe_of = simple_placement(&g, &fabric, true);
        let params = MemParams::tiny();
        let mut mem = SimMemory::new(&params);
        let mut engine = Engine::new(
            &g,
            &fabric,
            &pe_of,
            SimConfig {
                mem: params,
                ..SimConfig::default()
            },
        );
        engine.bind(pp, -1);
        assert!(matches!(engine.run(&mut mem), Err(SimError::Fault { .. })));
    }

    #[test]
    fn energy_breakdown_is_populated_and_consistent() {
        let (stats, _) = run_model(MemoryModel::Nupea, 2, 24, true);
        let e = stats.energy;
        assert!(e.alu > 0.0, "arith fired");
        assert!(e.control > 0.0, "gates fired");
        assert!(e.mem_issue > 0.0, "memory issued");
        assert!(e.noc > 0.0, "tokens moved");
        assert!(e.memory > 0.0, "banks accessed");
        assert!(e.total() >= e.alu + e.memory);
        assert!(e.data_movement_fraction() > 0.0 && e.data_movement_fraction() < 1.0);
        // Far-domain placement must cost more FM-NoC energy than D0.
        let (slow, _) = run_model(MemoryModel::Nupea, 2, 24, false);
        assert!(
            slow.energy.fmnoc > stats.energy.fmnoc,
            "far domains pay arbitration energy: {} vs {}",
            slow.energy.fmnoc,
            stats.energy.fmnoc
        );
    }

    #[test]
    fn stats_count_firings_and_loads() {
        let (stats, _) = run_model(MemoryModel::Nupea, 2, 10, true);
        assert!(stats.firings > 50);
        assert_eq!(stats.mem.requests, 20, "10 loads + 10 stores");
        let loads: u64 = stats.load_latency_by_domain.iter().map(|d| d.count).sum();
        assert_eq!(loads, 10);
        assert!(stats.cache_hit_rate > 0.0);
    }
}

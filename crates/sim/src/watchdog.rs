//! Stall diagnostics: when the engine wedges, say *why*.
//!
//! Deadlock-freedom under bounded buffering is a first-class correctness
//! concern for spatial dataflow systems: a single mis-sized FIFO or a
//! mis-built gate network can wedge the whole fabric, and before this
//! module existed the only symptom was a silent quiescence with residual
//! tokens or a multi-minute spin to the 2-billion-cycle runaway cap.
//!
//! The engine now builds a [`StallReport`] whenever it detects that no
//! further progress is possible (deadlock at quiescence) or that nothing
//! has progressed for a configurable window of system cycles (livelock /
//! lost-wakeup watchdog). The report classifies every stalled node:
//!
//! * [`StallKind::WaitingOperand`] — some required input token is missing;
//!   the node is blocked on the producers of the empty ports.
//! * [`StallKind::NoConsumerCredit`] — every operand is present but a
//!   consumer FIFO is full, so credit-based backpressure blocks the
//!   firing. At quiescence this is conclusive evidence of deadlock:
//!   nothing in flight can ever free the credit.
//! * [`StallKind::MemoryOutstanding`] — a load/store has requests in
//!   flight (or a full request queue) and is waiting on the memory system.
//! * [`StallKind::ReadyNotScheduled`] — the node could fire right now but
//!   the engine never woke it. This should be impossible; seeing it in a
//!   report means the engine's dirty-list bookkeeping lost a wakeup.
//!
//! The report also names a *blocking cycle* when one exists: a ring of
//! stalled nodes each blocked on the next, which is the signature of a
//! credit deadlock (too little buffering around a dataflow loop).

use std::fmt;

/// Why a node cannot fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StallKind {
    /// A required input operand is missing.
    WaitingOperand,
    /// All operands present, but a consumer FIFO has no free slot.
    NoConsumerCredit,
    /// Waiting on the memory system (in-flight or queue-full).
    MemoryOutstanding,
    /// Fireable but never woken — an engine scheduling bug.
    ReadyNotScheduled,
}

impl StallKind {
    /// Short kebab-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            StallKind::WaitingOperand => "waiting-operand",
            StallKind::NoConsumerCredit => "no-consumer-credit",
            StallKind::MemoryOutstanding => "memory-outstanding",
            StallKind::ReadyNotScheduled => "ready-not-scheduled",
        }
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Occupancy snapshot of one input FIFO at stall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortOccupancy {
    /// Input port index.
    pub port: u8,
    /// Tokens buffered in the FIFO.
    pub buffered: usize,
    /// Slots reserved for in-flight deliveries.
    pub reserved: u16,
}

/// One stalled node with its classification and blockers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct StalledNode {
    /// DFG node index.
    pub node: u32,
    /// Operation label (`Debug` form of the op).
    pub op: String,
    /// Why the node cannot fire.
    pub kind: StallKind,
    /// Occupied input FIFOs (empty ports are omitted).
    pub ports: Vec<PortOccupancy>,
    /// In-flight memory requests.
    pub outstanding: usize,
    /// Required input ports with no token available.
    pub missing_ports: Vec<u8>,
    /// Nodes this one is blocked on: producers of missing operands, or
    /// consumers whose FIFOs are full.
    pub blocked_on: Vec<u32>,
}

impl fmt::Display for StalledNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {} ({}): {}", self.node, self.op, self.kind)?;
        if !self.missing_ports.is_empty() {
            write!(f, ", missing ports {:?}", self.missing_ports)?;
        }
        if self.outstanding > 0 {
            write!(f, ", {} outstanding", self.outstanding)?;
        }
        if !self.blocked_on.is_empty() {
            write!(f, ", blocked on {:?}", self.blocked_on)?;
        }
        for p in &self.ports {
            write!(
                f,
                "; port {}: {} buffered/{} reserved",
                p.port, p.buffered, p.reserved
            )?;
        }
        Ok(())
    }
}

/// A full stall diagnosis: every stalled node, classified, plus the
/// blocking cycle (if any) and the residual token count.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct StallReport {
    /// System cycle at which the stall was detected.
    pub cycle: u64,
    /// Every stalled node, in node-index order.
    pub nodes: Vec<StalledNode>,
    /// A cycle of nodes blocking each other (`a -> b -> ... -> a`,
    /// first node repeated at the end), or empty when the blocking graph
    /// is acyclic.
    pub cycle_nodes: Vec<u32>,
    /// Tokens left buffered across all FIFOs.
    pub residual_tokens: usize,
}

impl StallReport {
    /// Build a report from classified nodes, detecting a blocking cycle.
    pub fn new(cycle: u64, nodes: Vec<StalledNode>, residual_tokens: usize) -> Self {
        let cycle_nodes = detect_cycle(&nodes);
        StallReport {
            cycle,
            nodes,
            cycle_nodes,
            residual_tokens,
        }
    }

    /// True when the stall is provably permanent: some node is blocked on
    /// credit, memory, or a lost wakeup, or the blocked-on graph contains
    /// a cycle. Waiting-operand chains without a cycle merely indicate an
    /// unbalanced kernel (tokens that will never be consumed), which the
    /// engine reports via `residual_tokens` instead.
    pub fn is_deadlock(&self) -> bool {
        !self.cycle_nodes.is_empty()
            || self
                .nodes
                .iter()
                .any(|n| n.kind != StallKind::WaitingOperand)
    }

    /// One-line summary for error messages.
    pub fn summary(&self) -> String {
        let mut kinds = [0usize; 4];
        for n in &self.nodes {
            kinds[match n.kind {
                StallKind::WaitingOperand => 0,
                StallKind::NoConsumerCredit => 1,
                StallKind::MemoryOutstanding => 2,
                StallKind::ReadyNotScheduled => 3,
            }] += 1;
        }
        let mut parts = Vec::new();
        for (i, label) in [
            "waiting-operand",
            "no-consumer-credit",
            "memory-outstanding",
            "ready-not-scheduled",
        ]
        .iter()
        .enumerate()
        {
            if kinds[i] > 0 {
                parts.push(format!("{} {label}", kinds[i]));
            }
        }
        let cycle = if self.cycle_nodes.is_empty() {
            String::new()
        } else {
            format!(
                "; blocking cycle {}",
                self.cycle_nodes
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("->")
            )
        };
        format!(
            "{} stalled node(s) [{}], {} residual token(s){cycle}",
            self.nodes.len(),
            parts.join(", "),
            self.residual_tokens,
        )
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stall at cycle {}: {}", self.cycle, self.summary())?;
        for n in &self.nodes {
            writeln!(f, "  {n}")?;
        }
        Ok(())
    }
}

/// Find a cycle in the blocked-on graph restricted to stalled nodes.
/// Returns the cycle as `a -> b -> ... -> a` or an empty vec.
fn detect_cycle(nodes: &[StalledNode]) -> Vec<u32> {
    use std::collections::HashMap;
    let idx: HashMap<u32, usize> = nodes.iter().enumerate().map(|(i, n)| (n.node, i)).collect();
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; nodes.len()];
    let mut stack: Vec<u32> = Vec::new();

    fn dfs(
        i: usize,
        nodes: &[StalledNode],
        idx: &HashMap<u32, usize>,
        color: &mut [u8],
        stack: &mut Vec<u32>,
    ) -> Option<Vec<u32>> {
        color[i] = 1;
        stack.push(nodes[i].node);
        for &b in &nodes[i].blocked_on {
            let Some(&j) = idx.get(&b) else { continue };
            match color[j] {
                0 => {
                    if let Some(c) = dfs(j, nodes, idx, color, stack) {
                        return Some(c);
                    }
                }
                1 => {
                    // Found: slice the stack from the first occurrence of b.
                    let start = stack.iter().position(|&x| x == b).unwrap_or(0);
                    let mut cyc: Vec<u32> = stack[start..].to_vec();
                    cyc.push(b);
                    return Some(cyc);
                }
                _ => {}
            }
        }
        stack.pop();
        color[i] = 2;
        None
    }

    for i in 0..nodes.len() {
        if color[i] == 0 {
            if let Some(c) = dfs(i, nodes, &idx, &mut color, &mut stack) {
                return c;
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stalled(node: u32, kind: StallKind, blocked_on: Vec<u32>) -> StalledNode {
        StalledNode {
            node,
            op: "BinOp(Add)".to_string(),
            kind,
            ports: vec![],
            outstanding: 0,
            missing_ports: vec![],
            blocked_on,
        }
    }

    #[test]
    fn detects_a_blocking_cycle() {
        let nodes = vec![
            stalled(1, StallKind::WaitingOperand, vec![2]),
            stalled(2, StallKind::WaitingOperand, vec![3]),
            stalled(3, StallKind::WaitingOperand, vec![1]),
        ];
        let r = StallReport::new(10, nodes, 3);
        assert!(!r.cycle_nodes.is_empty());
        assert_eq!(r.cycle_nodes.first(), r.cycle_nodes.last());
        assert!(r.is_deadlock(), "waiting-operand *cycle* is a deadlock");
    }

    #[test]
    fn acyclic_waiting_chain_is_not_deadlock() {
        let nodes = vec![
            stalled(1, StallKind::WaitingOperand, vec![2]),
            stalled(2, StallKind::WaitingOperand, vec![9]), // 9 not stalled
        ];
        let r = StallReport::new(10, nodes, 2);
        assert!(r.cycle_nodes.is_empty());
        assert!(!r.is_deadlock(), "plain imbalance is reported, not fatal");
    }

    #[test]
    fn two_disjoint_cycles_report_exactly_one_of_them() {
        // 1 -> 2 -> 1 and 5 -> 6 -> 7 -> 5: both are blocking cycles;
        // the finder must report one, completely, and never stitch the
        // two together. Every stalled node still appears in `nodes`.
        let nodes = vec![
            stalled(1, StallKind::WaitingOperand, vec![2]),
            stalled(2, StallKind::WaitingOperand, vec![1]),
            stalled(5, StallKind::WaitingOperand, vec![6]),
            stalled(6, StallKind::WaitingOperand, vec![7]),
            stalled(7, StallKind::WaitingOperand, vec![5]),
        ];
        let r = StallReport::new(10, nodes, 5);
        assert!(r.is_deadlock());
        assert_eq!(r.cycle_nodes.first(), r.cycle_nodes.last());
        let members: Vec<u32> = r.cycle_nodes[..r.cycle_nodes.len() - 1].to_vec();
        let small = {
            let mut m = members.clone();
            m.sort_unstable();
            m == vec![1, 2]
        };
        let big = {
            let mut m = members.clone();
            m.sort_unstable();
            m == vec![5, 6, 7]
        };
        assert!(
            small || big,
            "cycle must be exactly one of the two rings: {:?}",
            r.cycle_nodes
        );
        let stalled_set: Vec<u32> = r.nodes.iter().map(|n| n.node).collect();
        assert_eq!(stalled_set, vec![1, 2, 5, 6, 7]);
    }

    #[test]
    fn cycle_through_a_memory_response_edge_is_found() {
        // A ring threaded through the memory system: node 3 waits on an
        // operand from 8, 8 is blocked on its in-flight memory response
        // whose delivery credit is held by 12, and 12's consumer FIFO
        // credit is held by 3. Mixed stall kinds must not hide the ring.
        let mut mem_node = stalled(8, StallKind::MemoryOutstanding, vec![12]);
        mem_node.outstanding = 2;
        let nodes = vec![
            stalled(3, StallKind::WaitingOperand, vec![8]),
            mem_node,
            stalled(12, StallKind::NoConsumerCredit, vec![3]),
            // A bystander blocked on the ring but not part of it.
            stalled(20, StallKind::WaitingOperand, vec![3]),
        ];
        let r = StallReport::new(77, nodes, 4);
        assert!(r.is_deadlock());
        assert_eq!(r.cycle_nodes.first(), r.cycle_nodes.last());
        let mut members: Vec<u32> = r.cycle_nodes[..r.cycle_nodes.len() - 1].to_vec();
        members.sort_unstable();
        assert_eq!(members, vec![3, 8, 12], "bystander 20 must stay out");
        let by_node: Vec<(u32, StallKind)> = r.nodes.iter().map(|n| (n.node, n.kind)).collect();
        assert_eq!(
            by_node,
            vec![
                (3, StallKind::WaitingOperand),
                (8, StallKind::MemoryOutstanding),
                (12, StallKind::NoConsumerCredit),
                (20, StallKind::WaitingOperand),
            ]
        );
        assert!(r.summary().contains("1 memory-outstanding"));
    }

    #[test]
    fn credit_block_is_always_deadlock() {
        let nodes = vec![stalled(4, StallKind::NoConsumerCredit, vec![7])];
        let r = StallReport::new(99, nodes, 1);
        assert!(r.is_deadlock());
        let text = r.to_string();
        assert!(text.contains("no-consumer-credit"), "{text}");
        assert!(text.contains("node 4"), "{text}");
        assert!(r.summary().contains("1 no-consumer-credit"));
    }
}

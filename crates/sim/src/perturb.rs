//! Seeded latency-perturbation fuzzing — loom-style schedule exploration,
//! adapted to dataflow.
//!
//! The engine's correctness contract is that sink values and the final
//! memory image are functions of the *program*, never of the *schedule*:
//! ordered dataflow plus credit-based backpressure must make results
//! independent of when tokens and memory responses happen to arrive. This
//! module weaponizes that contract. When enabled, a seeded RNG adds random
//! extra latency to every NoC token delivery and every memory completion,
//! exploring schedules far outside what any fixed latency model produces.
//! Any observable divergence — a different sink stream, a different final
//! memory word, residual tokens appearing — is a determinism or race bug
//! in the engine, not noise.
//!
//! Two invariants make the perturbation sound (they mirror the hardware):
//!
//! * Tokens within one FIFO are never reordered: each perturbed delivery
//!   is clamped to be no earlier than the previous delivery into the same
//!   FIFO (`Engine::last_delivery`).
//! * Memory responses still leave each LS instruction in issue order: the
//!   jitter is applied *before* the engine's in-order response clamp.
//!
//! The fuzz harness in `tests/perturb_fuzz.rs` runs every workload under
//! several seeds and asserts bit-identical results against the unperturbed
//! baseline; CI runs it in release mode on every PR.

use nupea_rng::Xoshiro256;

/// Latency-perturbation settings, carried in
/// [`SimConfig`](crate::SimConfig). The default ([`PerturbConfig::OFF`])
/// draws no random numbers and leaves the engine bit-identical to a build
/// without this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerturbConfig {
    /// Seed for the jitter RNG (runs with equal seeds and amplitudes are
    /// reproducible).
    pub seed: u64,
    /// Maximum extra system cycles added to each NoC token delivery.
    pub max_noc_jitter: u64,
    /// Maximum extra system cycles added to each memory completion.
    pub max_mem_jitter: u64,
}

impl PerturbConfig {
    /// Fuzzing disabled (the default).
    pub const OFF: PerturbConfig = PerturbConfig {
        seed: 0,
        max_noc_jitter: 0,
        max_mem_jitter: 0,
    };

    /// Moderate jitter amplitudes with the given seed: a few cycles on the
    /// NoC, about a miss latency on memory completions.
    pub fn with_seed(seed: u64) -> Self {
        PerturbConfig {
            seed,
            max_noc_jitter: 3,
            max_mem_jitter: 9,
        }
    }

    /// True when any jitter is configured.
    pub fn enabled(&self) -> bool {
        self.max_noc_jitter > 0 || self.max_mem_jitter > 0
    }
}

impl Default for PerturbConfig {
    fn default() -> Self {
        PerturbConfig::OFF
    }
}

/// The engine-side jitter source (one RNG stream per run).
#[derive(Debug, Clone)]
pub(crate) struct Perturb {
    rng: Xoshiro256,
    max_noc: u64,
    max_mem: u64,
}

impl Perturb {
    /// Build the jitter source, or `None` when fuzzing is off.
    pub(crate) fn from_config(cfg: PerturbConfig) -> Option<Self> {
        if !cfg.enabled() {
            return None;
        }
        Some(Perturb {
            rng: Xoshiro256::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15),
            max_noc: cfg.max_noc_jitter,
            max_mem: cfg.max_mem_jitter,
        })
    }

    /// Extra cycles for the next NoC delivery, in `0..=max_noc_jitter`.
    pub(crate) fn noc_jitter(&mut self) -> u64 {
        if self.max_noc == 0 {
            0
        } else {
            self.rng.below(self.max_noc + 1)
        }
    }

    /// Extra cycles for the next memory completion, in
    /// `0..=max_mem_jitter`.
    pub(crate) fn mem_jitter(&mut self) -> u64 {
        if self.max_mem == 0 {
            0
        } else {
            self.rng.below(self.max_mem + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_disabled_and_default() {
        assert!(!PerturbConfig::OFF.enabled());
        assert_eq!(PerturbConfig::default(), PerturbConfig::OFF);
        assert!(Perturb::from_config(PerturbConfig::OFF).is_none());
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let cfg = PerturbConfig::with_seed(42);
        assert!(cfg.enabled());
        let mut a = Perturb::from_config(cfg).unwrap();
        let mut b = Perturb::from_config(cfg).unwrap();
        let mut saw_nonzero = false;
        for _ in 0..256 {
            let (x, y) = (a.noc_jitter(), b.noc_jitter());
            assert_eq!(x, y, "equal seeds must give equal jitter streams");
            assert!(x <= cfg.max_noc_jitter);
            let (x, y) = (a.mem_jitter(), b.mem_jitter());
            assert_eq!(x, y);
            assert!(x <= cfg.max_mem_jitter);
            saw_nonzero |= x > 0;
        }
        assert!(saw_nonzero, "jitter should actually perturb something");
    }
}

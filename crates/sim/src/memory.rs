//! Simulated memory: word-addressed backing store, bump allocator, and the
//! shared memory-side cache with banked main memory (§4, §6 of the paper).
//!
//! Monaco's evaluated configuration: 8 MB total memory, a 256 KB shared
//! data cache in front, both banked 32×. Words are 32-bit on Monaco; we
//! store `i64` token values one per word address, with the line size
//! expressed in words.

/// Memory-system geometry and latencies (system-clock cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemParams {
    /// Total memory capacity in words.
    pub mem_words: usize,
    /// Cache capacity in words.
    pub cache_words: usize,
    /// Cache line size in words.
    pub line_words: usize,
    /// Cache associativity.
    pub ways: usize,
    /// Number of banks (cache and main memory, §4).
    pub banks: usize,
    /// Cache-hit service latency.
    pub hit_latency: u64,
    /// Additional main-memory latency on a miss.
    pub miss_latency: u64,
}

impl Default for MemParams {
    fn default() -> Self {
        // §6: 8MB memory, 256KB data cache, banked 32x, 4-cycle main memory,
        // 2-cycle cache hit. With 32-bit words: 2M words / 64K cache words.
        MemParams {
            mem_words: 2 * 1024 * 1024,
            cache_words: 64 * 1024,
            line_words: 16,
            ways: 8,
            banks: 32,
            hit_latency: 2,
            miss_latency: 4,
        }
    }
}

impl MemParams {
    /// Reject degenerate geometries (zero banks, zero-word lines, zero
    /// ways, empty memory) that would otherwise divide by zero or wedge
    /// deep inside the memory system.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`](crate::engine::ConfigError) found.
    pub fn validate(&self) -> Result<(), crate::engine::ConfigError> {
        use crate::engine::ConfigError;
        if self.banks == 0 {
            return Err(ConfigError::ZeroBanks);
        }
        if self.line_words == 0 {
            return Err(ConfigError::ZeroLineWords);
        }
        if self.ways == 0 {
            return Err(ConfigError::ZeroWays);
        }
        if self.mem_words == 0 {
            return Err(ConfigError::ZeroMemWords);
        }
        Ok(())
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        MemParams {
            mem_words: 4096,
            cache_words: 256,
            line_words: 8,
            ways: 2,
            banks: 4,
            hit_latency: 2,
            miss_latency: 4,
        }
    }

    /// Cache line index of a word address.
    #[inline]
    pub fn line_of(&self, addr: usize) -> usize {
        addr / self.line_words
    }

    /// Bank serving a word address (line-interleaved).
    #[inline]
    pub fn bank_of(&self, addr: usize) -> usize {
        self.line_of(addr) % self.banks
    }

    /// Number of cache sets.
    #[inline]
    pub fn num_sets(&self) -> usize {
        (self.cache_words / self.line_words / self.ways).max(1)
    }
}

/// Word-addressed simulated memory with a line-aligned bump allocator.
///
/// Kernels allocate their arrays here, the simulator executes real loads and
/// stores against it, and tests compare final contents with reference
/// implementations.
#[derive(Debug, Clone)]
pub struct SimMemory {
    words: Vec<i64>,
    next_free: usize,
    line_words: usize,
    /// Exclusive upper bound of every address written since construction.
    /// The backing store starts zeroed, so `words[high_write..]` is
    /// provably all-zero at all times — [`SimMemory::copy_from`] exploits
    /// this to restore a recycled buffer by touching only the written
    /// prefix instead of the full (multi-megabyte) store.
    high_write: usize,
}

impl SimMemory {
    /// Create a memory of `params.mem_words` zeroed words.
    pub fn new(params: &MemParams) -> Self {
        SimMemory {
            words: vec![0; params.mem_words],
            next_free: 0,
            line_words: params.line_words,
            high_write: 0,
        }
    }

    /// Allocate `len` words, line-aligned. Returns the base word address.
    ///
    /// # Panics
    ///
    /// Panics if the allocation exceeds memory capacity (kernel inputs are
    /// sized to fit, per Table 1's "inputs fit in memory").
    pub fn alloc(&mut self, len: usize) -> i64 {
        let base = self.next_free;
        let end = base + len;
        assert!(
            end <= self.words.len(),
            "simulated memory exhausted: need {end} words, have {}",
            self.words.len()
        );
        self.next_free = end.next_multiple_of(self.line_words);
        base as i64
    }

    /// Allocate and initialize from a slice. Returns the base word address.
    pub fn alloc_init(&mut self, data: &[i64]) -> i64 {
        let base = self.alloc(data.len());
        self.words[base as usize..base as usize + data.len()].copy_from_slice(data);
        self.high_write = self.high_write.max(base as usize + data.len());
        base
    }

    /// Read a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    #[inline]
    pub fn read(&self, addr: usize) -> i64 {
        self.words[addr]
    }

    /// Write a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    #[inline]
    pub fn write(&mut self, addr: usize, value: i64) {
        self.words[addr] = value;
        self.high_write = self.high_write.max(addr + 1);
    }

    /// Checked read used by the simulator (`None` = fault).
    #[inline]
    pub fn try_read(&self, addr: i64) -> Option<i64> {
        usize::try_from(addr)
            .ok()
            .and_then(|a| self.words.get(a))
            .copied()
    }

    /// Checked write used by the simulator (`false` = fault).
    #[inline]
    pub fn try_write(&mut self, addr: i64, value: i64) -> bool {
        match usize::try_from(addr)
            .ok()
            .and_then(|a| self.words.get_mut(a))
        {
            Some(slot) => {
                *slot = value;
                self.high_write = self.high_write.max(addr as usize + 1);
                true
            }
            None => false,
        }
    }

    /// Overwrite `self` with a copy of `src` without reallocating, so run
    /// buffers can be recycled across simulations. A fresh 16 MB clone is
    /// page-fault-bound (~10 ms); copying into an already-faulted buffer
    /// is a plain memcpy — and thanks to the `high_write` watermark only
    /// the written prefixes of the two stores need touching at all: both
    /// are provably zero past their watermarks, so the result is
    /// word-for-word identical to a full copy.
    ///
    /// # Panics
    ///
    /// Panics if the two memories have different capacities.
    pub fn copy_from(&mut self, src: &SimMemory) {
        assert_eq!(
            self.words.len(),
            src.words.len(),
            "copy_from requires equal capacities"
        );
        self.words[..src.high_write].copy_from_slice(&src.words[..src.high_write]);
        if self.high_write > src.high_write {
            self.words[src.high_write..self.high_write].fill(0);
        }
        self.high_write = src.high_write;
        self.next_free = src.next_free;
        self.line_words = src.line_words;
    }

    /// View a range of memory (for result validation).
    pub fn slice(&self, base: i64, len: usize) -> &[i64] {
        &self.words[base as usize..base as usize + len]
    }

    /// Entire backing store, mutably (used by the untimed interpreter).
    /// Writes through the returned slice cannot be tracked, so the
    /// high-write watermark is pessimistically raised to the full store.
    pub fn words_mut(&mut self) -> &mut [i64] {
        self.high_write = self.words.len();
        &mut self.words
    }

    /// Entire backing store.
    pub fn words(&self) -> &[i64] {
        &self.words
    }

    /// Words allocated so far.
    pub fn used(&self) -> usize {
        self.next_free
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }
}

/// Shared memory-side cache model: set-associative, LRU, allocate-on-miss
/// for both loads and stores. Only hit/miss (latency) is modelled — data
/// always comes from [`SimMemory`], which is kept coherent by construction
/// since there is a single shared cache (no coherence protocol needed, §2.1).
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<CacheSet>,
    line_words: usize,
    banks: usize,
    /// Total hits observed.
    pub hits: u64,
    /// Total misses observed.
    pub misses: u64,
}

#[derive(Debug, Clone)]
struct CacheSet {
    /// (line tag, last-use stamp) per way; `u64::MAX` tag = invalid.
    ways: Vec<(u64, u64)>,
}

impl Cache {
    /// Build the cache for the given geometry.
    pub fn new(params: &MemParams) -> Self {
        Cache {
            sets: vec![
                CacheSet {
                    ways: vec![(u64::MAX, 0); params.ways]
                };
                params.num_sets()
            ],
            line_words: params.line_words,
            banks: params.banks,
            hits: 0,
            misses: 0,
        }
    }

    /// Access a word address at logical time `stamp`; returns true on hit.
    /// Misses allocate (LRU eviction).
    pub fn access(&mut self, addr: usize, stamp: u64) -> bool {
        let line = (addr / self.line_words) as u64;
        let set_idx = (line as usize / self.banks) % self.sets.len();
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.ways.iter_mut().find(|(tag, _)| *tag == line) {
            way.1 = stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // LRU victim.
        let victim = set
            .ways
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, used))| *used)
            .map(|(i, _)| i)
            .expect("cache has at least one way");
        set.ways[victim] = (line, stamp);
        false
    }

    /// Hit rate so far (1.0 when no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let p = MemParams::tiny();
        let mut m = SimMemory::new(&p);
        let a = m.alloc(5);
        let b = m.alloc(3);
        assert_eq!(a, 0);
        assert_eq!(b % p.line_words as i64, 0);
        assert!(b >= 5);
        m.write(a as usize, 7);
        m.write(b as usize, 9);
        assert_eq!(m.read(a as usize), 7);
        assert_eq!(m.read(b as usize), 9);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_past_capacity_panics() {
        let p = MemParams::tiny();
        let mut m = SimMemory::new(&p);
        m.alloc(p.mem_words + 1);
    }

    #[test]
    fn alloc_init_roundtrips() {
        let p = MemParams::tiny();
        let mut m = SimMemory::new(&p);
        let data = vec![1, 2, 3, 4, 5];
        let base = m.alloc_init(&data);
        assert_eq!(m.slice(base, 5), &data[..]);
    }

    #[test]
    fn try_read_write_bounds() {
        let p = MemParams::tiny();
        let mut m = SimMemory::new(&p);
        assert!(m.try_read(-1).is_none());
        assert!(m.try_read(p.mem_words as i64).is_none());
        assert!(m.try_write(0, 42));
        assert_eq!(m.try_read(0), Some(42));
        assert!(!m.try_write(-5, 1));
    }

    #[test]
    fn cache_hits_after_first_touch() {
        let p = MemParams::tiny();
        let mut c = Cache::new(&p);
        assert!(!c.access(0, 1), "cold miss");
        assert!(c.access(1, 2), "same line hits");
        assert!(c.access(p.line_words - 1, 3));
        assert!(!c.access(p.line_words, 4), "next line cold");
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn cache_lru_evicts_least_recent() {
        // 2-way tiny cache: touch 3 lines mapping to the same set.
        let p = MemParams::tiny();
        let mut c = Cache::new(&p);
        let sets = p.num_sets();
        let stride = sets * p.banks * p.line_words; // same set, same bank class
        c.access(0, 1); // line A
        c.access(stride, 2); // line B
        c.access(0, 3); // A again: hit, refresh
        c.access(2 * stride, 4); // line C: evicts B
        assert!(c.access(0, 5), "A still resident");
        assert!(!c.access(stride, 6), "B was evicted");
    }

    #[test]
    fn bank_mapping_interleaves_lines() {
        let p = MemParams::default();
        assert_eq!(p.bank_of(0), 0);
        assert_eq!(p.bank_of(p.line_words), 1);
        assert_eq!(p.bank_of(p.line_words * p.banks), 0);
        // Within a line: same bank.
        assert_eq!(p.bank_of(3), p.bank_of(0));
    }

    #[test]
    fn default_params_match_paper() {
        let p = MemParams::default();
        assert_eq!(p.mem_words * 4, 8 * 1024 * 1024, "8MB");
        assert_eq!(p.cache_words * 4, 256 * 1024, "256KB cache");
        assert_eq!(p.banks, 32);
        assert_eq!(p.hit_latency, 2);
        assert_eq!(p.miss_latency, 4);
    }
}

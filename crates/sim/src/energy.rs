//! Energy accounting for the simulated fabric.
//!
//! Monaco descends from energy-minimal dataflow designs (RipTide/Monza),
//! and the paper's motivation is that *data movement* dominates energy.
//! The simulator therefore charges abstract energy units per event, with
//! relative weights in line with the energy-minimal SDA literature: a
//! fabric-scale wire hop costs a sizable fraction of an ALU op, and a
//! memory-bank access costs an order of magnitude more.
//!
//! Units are arbitrary ("ALU-op equivalents"); only ratios matter, exactly
//! as with the performance results. Data-NoC energy is charged per token
//! per Manhattan hop between producer and consumer PEs (routing detours
//! are ignored — a documented approximation).

/// Per-event energy weights, in ALU-op equivalents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// One arithmetic/comparison firing.
    pub alu_op: f64,
    /// One control-flow gate firing (steer/carry/invariant/select/mux).
    pub control_op: f64,
    /// Issuing one load/store from an LS PE.
    pub mem_issue: f64,
    /// Moving one token one tile hop on the data NoC.
    pub noc_hop: f64,
    /// One arbiter forward in the fabric-memory NoC (request or response).
    pub fmnoc_arbiter: f64,
    /// One bank access that hits in the shared cache.
    pub cache_hit: f64,
    /// Additional cost of a main-memory access on a miss.
    pub mem_access: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            alu_op: 1.0,
            control_op: 0.3,
            mem_issue: 1.0,
            noc_hop: 0.6,
            fmnoc_arbiter: 0.5,
            cache_hit: 5.0,
            mem_access: 15.0,
        }
    }
}

/// Energy consumed by one run, broken down by component.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Arithmetic firings.
    pub alu: f64,
    /// Control-flow firings.
    pub control: f64,
    /// Load/store issue cost.
    pub mem_issue: f64,
    /// Data-NoC token movement.
    pub noc: f64,
    /// Fabric-memory NoC arbitration.
    pub fmnoc: f64,
    /// Cache and main-memory accesses.
    pub memory: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.alu + self.control + self.mem_issue + self.noc + self.fmnoc + self.memory
    }

    /// Fraction of total energy spent moving data (NoC + FM-NoC + memory).
    pub fn data_movement_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.noc + self.fmnoc + self.memory) / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let e = EnergyBreakdown {
            alu: 1.0,
            control: 2.0,
            mem_issue: 3.0,
            noc: 4.0,
            fmnoc: 5.0,
            memory: 6.0,
        };
        assert!((e.total() - 21.0).abs() < 1e-12);
        assert!((e.data_movement_fraction() - 15.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn default_weights_are_ordered_sensibly() {
        let p = EnergyParams::default();
        assert!(p.control_op < p.alu_op, "control FUs are cheap");
        assert!(p.mem_access > p.cache_hit, "DRAM costs more than cache");
        assert!(p.cache_hit > p.alu_op, "memory costs more than compute");
    }
}

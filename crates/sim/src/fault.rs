//! Seeded fault injection: hard PE failures, NoC link faults, transient
//! token corruption, and memory-bank failure.
//!
//! The hook follows the [`crate::perturb`] pattern exactly: a plain-data
//! [`FaultConfig`] rides in [`crate::SimConfig`], the engine materializes
//! a `FaultState` only when a fault is armed, and every injection site is
//! a single branch on that `Option` — a run with [`FaultConfig::OFF`] is
//! bit-identical (cycle counts included) to a build without this module.
//!
//! One run injects at most one concrete [`FaultKind`]; campaigns sample
//! hundreds of them deterministically with a [`FaultPlan`] (all
//! randomness through [`nupea_rng::Xoshiro256`]) and classify what the
//! system did about each (see `nupea::campaign`).
//!
//! The fault taxonomy (DESIGN.md §9):
//!
//! - [`FaultKind::PeFail`] — fail-stop: the PE fires nothing from cycle
//!   `at` on (`at == 0` models a dead PE found at power-on; `at > 0` a
//!   mid-run failure). In-flight tokens and memory responses still
//!   drain — failure is at the issue boundary.
//! - [`FaultKind::LinkDrop`] — every token on one producer-PE →
//!   consumer-PE link is lost from cycle `at` on. The consumer's
//!   reservation is released, so the loss is silent at the link level
//!   and surfaces as starvation downstream.
//! - [`FaultKind::LinkStuck`] — tokens on the link are delayed by
//!   [`STUCK_DELAY`] cycles (effectively forever at campaign budgets),
//!   preserving per-FIFO order; everything behind the head queues up.
//! - [`FaultKind::CorruptToken`] — the `nth` token to move on the data
//!   NoC has its payload XORed once (single-event upset). Timing is
//!   unchanged, so this is the silent-data-corruption generator.
//! - [`FaultKind::BankFail`] — from cycle `at`, every request addressed
//!   to one memory bank is routed to the memory system's existing fault
//!   path and the run aborts with a typed [`crate::SimError::Fault`].

use nupea_rng::Xoshiro256;

/// Extra delivery delay for a [`FaultKind::LinkStuck`] link, chosen to
/// exceed any realistic campaign cycle budget (but stay well below the
/// 2-billion-cycle runaway cap) so a load-bearing stuck link manifests
/// as a stall or cycle-limit detection, never as a very slow success.
pub const STUCK_DELAY: u64 = 1_000_000_000;

/// One concrete injected fault (see the [module docs](self) for the
/// taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Hard fail-stop of one PE from cycle `at` on.
    PeFail {
        /// Failed PE index.
        pe: u32,
        /// First cycle at which the PE no longer fires (0 = from reset).
        at: u64,
    },
    /// Token loss on one producer→consumer PE link from cycle `at` on.
    LinkDrop {
        /// Producer PE index.
        src: u32,
        /// Consumer PE index.
        dst: u32,
        /// First cycle at which tokens are dropped.
        at: u64,
    },
    /// Tokens on one producer→consumer PE link are stuck (delayed by
    /// [`STUCK_DELAY`]) from cycle `at` on.
    LinkStuck {
        /// Producer PE index.
        src: u32,
        /// Consumer PE index.
        dst: u32,
        /// First cycle at which the link is stuck.
        at: u64,
    },
    /// The `nth` NoC token (0-based, in global send order) has its
    /// payload XORed with `xor` — a one-shot transient upset.
    CorruptToken {
        /// 0-based index of the corrupted token.
        nth: u64,
        /// Bit-flip mask (must be non-zero to have any effect).
        xor: u64,
    },
    /// Every memory request addressed to `bank` faults from cycle `at`.
    BankFail {
        /// Failed bank index.
        bank: u32,
        /// First cycle at which the bank faults requests.
        at: u64,
    },
}

impl FaultKind {
    /// Stable compact descriptor, e.g. `pe-fail:17@0`, `link-drop:3>9@5`,
    /// `corrupt:42^255`, `bank-fail:3@50`. Journal- and CSV-safe (no
    /// commas, quotes, or spaces); [`FaultKind::parse_desc`] inverts it.
    #[must_use]
    pub fn desc(&self) -> String {
        match self {
            FaultKind::PeFail { pe, at } => format!("pe-fail:{pe}@{at}"),
            FaultKind::LinkDrop { src, dst, at } => format!("link-drop:{src}>{dst}@{at}"),
            FaultKind::LinkStuck { src, dst, at } => format!("link-stuck:{src}>{dst}@{at}"),
            FaultKind::CorruptToken { nth, xor } => format!("corrupt:{nth}^{xor}"),
            FaultKind::BankFail { bank, at } => format!("bank-fail:{bank}@{at}"),
        }
    }

    /// Parse a [`FaultKind::desc`] string back (None for anything
    /// malformed — torn journal tails must not be fatal).
    #[must_use]
    pub fn parse_desc(s: &str) -> Option<FaultKind> {
        let (kind, rest) = s.split_once(':')?;
        let at_split = |r: &str| -> Option<(String, u64)> {
            let (head, at) = r.split_once('@')?;
            Some((head.to_string(), at.parse().ok()?))
        };
        Some(match kind {
            "pe-fail" => {
                let (pe, at) = at_split(rest)?;
                FaultKind::PeFail {
                    pe: pe.parse().ok()?,
                    at,
                }
            }
            "link-drop" | "link-stuck" => {
                let (pair, at) = at_split(rest)?;
                let (src, dst) = pair.split_once('>')?;
                let (src, dst) = (src.parse().ok()?, dst.parse().ok()?);
                if kind == "link-drop" {
                    FaultKind::LinkDrop { src, dst, at }
                } else {
                    FaultKind::LinkStuck { src, dst, at }
                }
            }
            "corrupt" => {
                let (nth, xor) = rest.split_once('^')?;
                FaultKind::CorruptToken {
                    nth: nth.parse().ok()?,
                    xor: xor.parse().ok()?,
                }
            }
            "bank-fail" => {
                let (bank, at) = at_split(rest)?;
                FaultKind::BankFail {
                    bank: bank.parse().ok()?,
                    at,
                }
            }
            _ => return None,
        })
    }

    /// The PEs a re-place must avoid to work around this fault, when the
    /// fault is placement-addressable (spare-PE recovery). `None` for
    /// transient corruption (retry instead) and bank failure (not a
    /// placement resource).
    #[must_use]
    pub fn avoid_pes(&self) -> Option<Vec<u32>> {
        match *self {
            FaultKind::PeFail { pe, .. } => Some(vec![pe]),
            FaultKind::LinkDrop { src, dst, .. } | FaultKind::LinkStuck { src, dst, .. } => {
                Some(vec![src, dst])
            }
            FaultKind::CorruptToken { .. } | FaultKind::BankFail { .. } => None,
        }
    }

    /// Whether the fault is a one-shot transient (recoverable by
    /// re-running, no resource to avoid).
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, FaultKind::CorruptToken { .. })
    }
}

/// Fault-injection configuration, carried by [`crate::SimConfig::fault`].
/// Plain data, zero cost when off (the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// The armed fault, if any. `None` disables every injection site.
    pub fault: Option<FaultKind>,
}

impl FaultConfig {
    /// Fault injection disabled (the default).
    pub const OFF: FaultConfig = FaultConfig { fault: None };

    /// Arm one concrete fault.
    #[must_use]
    pub fn inject(kind: FaultKind) -> Self {
        FaultConfig { fault: Some(kind) }
    }

    /// Whether a fault is armed.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.fault.is_some()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::OFF
    }
}

/// Engine-side injection state (None when disabled; every site is one
/// branch on the `Option`, mirroring `Perturb` and the tracer).
#[derive(Debug)]
pub(crate) struct FaultState {
    kind: FaultKind,
    /// NoC tokens counted so far (for [`FaultKind::CorruptToken`]).
    tokens: u64,
    /// The one-shot corruption already fired.
    corrupted: bool,
}

impl FaultState {
    pub(crate) fn from_config(cfg: &FaultConfig) -> Option<Self> {
        cfg.fault.map(|kind| FaultState {
            kind,
            tokens: 0,
            corrupted: false,
        })
    }

    /// Whether `pe` is failed at cycle `t`.
    #[inline]
    pub(crate) fn pe_dead(&self, pe: u32, t: u64) -> bool {
        matches!(self.kind, FaultKind::PeFail { pe: p, at } if p == pe && t >= at)
    }

    /// The active link fault on `src → dst` at cycle `t`, if any.
    #[inline]
    pub(crate) fn link_fault(&self, src: u32, dst: u32, t: u64) -> Option<LinkFault> {
        match self.kind {
            FaultKind::LinkDrop { src: s, dst: d, at } if s == src && d == dst && t >= at => {
                Some(LinkFault::Drop)
            }
            FaultKind::LinkStuck { src: s, dst: d, at } if s == src && d == dst && t >= at => {
                Some(LinkFault::Stuck)
            }
            _ => None,
        }
    }

    /// Count one NoC token; returns the XOR mask when this token is the
    /// armed one-shot corruption target.
    #[inline]
    pub(crate) fn corrupt_token(&mut self) -> Option<u64> {
        let i = self.tokens;
        self.tokens += 1;
        match self.kind {
            FaultKind::CorruptToken { nth, xor } if !self.corrupted && i == nth => {
                self.corrupted = true;
                Some(xor)
            }
            _ => None,
        }
    }

    /// Whether `bank` is failed at cycle `t`.
    #[inline]
    pub(crate) fn bank_dead(&self, bank: u32, t: u64) -> bool {
        matches!(self.kind, FaultKind::BankFail { bank: b, at } if b == bank && t >= at)
    }
}

/// An active link fault as seen by the delivery scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LinkFault {
    /// Lose the token (release the consumer reservation).
    Drop,
    /// Delay the token by [`STUCK_DELAY`].
    Stuck,
}

/// Which fault classes a [`FaultPlan`] samples from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClasses {
    /// Hard PE failures.
    pub pe_fail: bool,
    /// NoC link faults (drop and stuck).
    pub link: bool,
    /// Transient single-token corruption.
    pub corrupt: bool,
    /// Memory-bank failure.
    pub bank: bool,
}

impl FaultClasses {
    /// Every class enabled.
    pub const ALL: FaultClasses = FaultClasses {
        pe_fail: true,
        link: true,
        corrupt: true,
        bank: true,
    };

    /// Hard PE failures only (the smoke preset: always detectable, always
    /// placement-recoverable, never an SDC).
    pub const PE_FAILURES: FaultClasses = FaultClasses {
        pe_fail: true,
        link: false,
        corrupt: false,
        bank: false,
    };
}

/// What a [`FaultPlan`] samples against: the resources one compiled run
/// actually uses, taken from its fault-free golden execution.
#[derive(Debug, Clone, Default)]
pub struct FaultContext {
    /// PEs with at least one mapped cell (failure candidates).
    pub used_pes: Vec<u32>,
    /// Active producer→consumer PE links (from the golden run's traffic).
    pub links: Vec<(u32, u32)>,
    /// Total NoC tokens moved in the golden run.
    pub tokens: u64,
    /// Memory banks in the configuration.
    pub banks: u32,
    /// Golden-run completion time in system cycles (mid-run injection
    /// times are sampled in `[0, horizon)`).
    pub horizon: u64,
}

/// A seeded, deterministic fault-injection plan: `sample(workload, i)` is
/// a pure function of `(seed, workload, i)`, so a campaign's injection
/// set — and therefore its whole resilience report — replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed.
    pub seed: u64,
    /// Enabled fault classes.
    pub classes: FaultClasses,
}

impl FaultPlan {
    /// A plan over the given classes.
    #[must_use]
    pub fn new(seed: u64, classes: FaultClasses) -> Self {
        FaultPlan { seed, classes }
    }

    /// Sample the `index`-th injection for `workload` against `ctx`.
    /// Falls back to a PE failure when a sampled class has no usable
    /// resource (no active links, no tokens, no banks).
    #[must_use]
    pub fn sample(&self, workload: &str, index: u32, ctx: &FaultContext) -> FaultKind {
        assert!(
            !ctx.used_pes.is_empty(),
            "fault context must name at least one used PE"
        );
        let mut rng =
            Xoshiro256::seed_from_u64(self.seed ^ fnv1a(workload) ^ (u64::from(index) << 32));
        let mut classes = Vec::with_capacity(4);
        let c = self.classes;
        if c.pe_fail {
            classes.push(0u8);
        }
        if c.link && !ctx.links.is_empty() {
            classes.push(1);
        }
        if c.corrupt && ctx.tokens > 0 {
            classes.push(2);
        }
        if c.bank && ctx.banks > 0 {
            classes.push(3);
        }
        if classes.is_empty() {
            classes.push(0);
        }
        let horizon = ctx.horizon.max(1);
        match classes[rng.index(classes.len())] {
            0 => FaultKind::PeFail {
                pe: ctx.used_pes[rng.index(ctx.used_pes.len())],
                // Half the failures are present from reset, half strike
                // mid-run — both arms of the taxonomy get exercised.
                at: if rng.next_bool() {
                    0
                } else {
                    rng.below(horizon)
                },
            },
            1 => {
                let (src, dst) = ctx.links[rng.index(ctx.links.len())];
                let at = rng.below(horizon);
                if rng.next_bool() {
                    FaultKind::LinkDrop { src, dst, at }
                } else {
                    FaultKind::LinkStuck { src, dst, at }
                }
            }
            2 => FaultKind::CorruptToken {
                nth: rng.below(ctx.tokens),
                // Never zero: a zero mask would be a no-op "fault".
                xor: rng.next_u64() | 1,
            },
            _ => FaultKind::BankFail {
                bank: rng.below(u64::from(ctx.banks)) as u32,
                at: rng.below(horizon),
            },
        }
    }
}

/// FNV-1a over a string (workload-name mixing for per-injection seeds;
/// the same constants as `nupea_dse::fnv1a`, inlined to keep `nupea-sim`
/// dependency-light).
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_disabled_and_default() {
        assert!(!FaultConfig::OFF.enabled());
        assert_eq!(FaultConfig::default(), FaultConfig::OFF);
        assert!(FaultState::from_config(&FaultConfig::OFF).is_none());
        assert!(FaultConfig::inject(FaultKind::PeFail { pe: 3, at: 0 }).enabled());
    }

    #[test]
    fn descs_round_trip() {
        let kinds = [
            FaultKind::PeFail { pe: 17, at: 0 },
            FaultKind::PeFail { pe: 3, at: 4242 },
            FaultKind::LinkDrop {
                src: 3,
                dst: 9,
                at: 5,
            },
            FaultKind::LinkStuck {
                src: 0,
                dst: 143,
                at: 99,
            },
            FaultKind::CorruptToken { nth: 42, xor: 255 },
            FaultKind::BankFail { bank: 3, at: 50 },
        ];
        for k in kinds {
            assert_eq!(FaultKind::parse_desc(&k.desc()), Some(k), "{}", k.desc());
        }
        assert_eq!(FaultKind::parse_desc(""), None);
        assert_eq!(FaultKind::parse_desc("pe-fail:x@0"), None);
        assert_eq!(FaultKind::parse_desc("warp-core:3@1"), None);
    }

    #[test]
    fn state_predicates_respect_activation_time() {
        let s = FaultState::from_config(&FaultConfig::inject(FaultKind::PeFail { pe: 7, at: 100 }))
            .unwrap();
        assert!(!s.pe_dead(7, 99));
        assert!(s.pe_dead(7, 100));
        assert!(!s.pe_dead(8, 100));

        let s = FaultState::from_config(&FaultConfig::inject(FaultKind::LinkDrop {
            src: 1,
            dst: 2,
            at: 10,
        }))
        .unwrap();
        assert_eq!(s.link_fault(1, 2, 9), None);
        assert_eq!(s.link_fault(1, 2, 10), Some(LinkFault::Drop));
        assert_eq!(s.link_fault(2, 1, 10), None);

        let s =
            FaultState::from_config(&FaultConfig::inject(FaultKind::BankFail { bank: 3, at: 5 }))
                .unwrap();
        assert!(!s.bank_dead(3, 4));
        assert!(s.bank_dead(3, 5));
        assert!(!s.bank_dead(2, 5));
    }

    #[test]
    fn corruption_fires_exactly_once_on_the_nth_token() {
        let mut s = FaultState::from_config(&FaultConfig::inject(FaultKind::CorruptToken {
            nth: 2,
            xor: 0xFF,
        }))
        .unwrap();
        assert_eq!(s.corrupt_token(), None);
        assert_eq!(s.corrupt_token(), None);
        assert_eq!(s.corrupt_token(), Some(0xFF));
        assert_eq!(s.corrupt_token(), None);
        assert_eq!(s.corrupt_token(), None);
    }

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let ctx = FaultContext {
            used_pes: vec![3, 7, 11, 19],
            links: vec![(3, 7), (7, 11)],
            tokens: 1000,
            banks: 32,
            horizon: 5000,
        };
        let plan = FaultPlan::new(0xC0FFEE, FaultClasses::ALL);
        let a: Vec<FaultKind> = (0..32).map(|i| plan.sample("spmv", i, &ctx)).collect();
        let b: Vec<FaultKind> = (0..32).map(|i| plan.sample("spmv", i, &ctx)).collect();
        assert_eq!(a, b, "same seed replays the same injections");
        let other = FaultPlan::new(0x5EED, FaultClasses::ALL);
        let c: Vec<FaultKind> = (0..32).map(|i| other.sample("spmv", i, &ctx)).collect();
        assert_ne!(a, c, "different seeds sample different injections");
        let d: Vec<FaultKind> = (0..32).map(|i| plan.sample("dmv", i, &ctx)).collect();
        assert_ne!(a, d, "the workload name is part of the seed");
    }

    #[test]
    fn smoke_classes_only_sample_pe_failures() {
        let ctx = FaultContext {
            used_pes: vec![1, 2, 3],
            links: vec![(1, 2)],
            tokens: 100,
            banks: 4,
            horizon: 100,
        };
        let plan = FaultPlan::new(1, FaultClasses::PE_FAILURES);
        for i in 0..64 {
            let k = plan.sample("w", i, &ctx);
            assert!(matches!(k, FaultKind::PeFail { .. }), "{}", k.desc());
            if let FaultKind::PeFail { pe, at } = k {
                assert!(ctx.used_pes.contains(&pe));
                assert!(at < 100);
            }
        }
    }

    #[test]
    fn sampled_resources_come_from_the_context() {
        let ctx = FaultContext {
            used_pes: vec![5],
            links: vec![(5, 6)],
            tokens: 10,
            banks: 2,
            horizon: 50,
        };
        let plan = FaultPlan::new(7, FaultClasses::ALL);
        for i in 0..128 {
            match plan.sample("w", i, &ctx) {
                FaultKind::PeFail { pe, .. } => assert_eq!(pe, 5),
                FaultKind::LinkDrop { src, dst, .. } | FaultKind::LinkStuck { src, dst, .. } => {
                    assert_eq!((src, dst), (5, 6));
                }
                FaultKind::CorruptToken { nth, xor } => {
                    assert!(nth < 10);
                    assert_ne!(xor, 0);
                }
                FaultKind::BankFail { bank, at } => {
                    assert!(bank < 2);
                    assert!(at < 50);
                }
            }
        }
    }
}

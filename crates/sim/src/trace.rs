//! Time-resolved tracing: a zero-cost-when-disabled event recorder with a
//! Chrome trace-event / Perfetto JSON exporter.
//!
//! End-of-run totals ([`RunStats`](crate::engine::RunStats)) explain *how
//! much* happened; they cannot explain *when*. Mapping decisions — which
//! NUPEA domain a critical load landed in, which bank serializes a burst,
//! where backpressure originates — are only explainable with time-resolved
//! utilization data. This module records the simulator's microarchitectural
//! events into a bounded ring buffer:
//!
//! * PE firings (one span per instruction firing, tagged with the node's
//!   criticality class),
//! * token FIFO occupancy samples on every push and pop,
//! * data-NoC sends with hop counts,
//! * memory-request lifecycles (issue → bank dequeue → response-chain
//!   hops → delivery at the PE),
//! * watchdog stall snapshots.
//!
//! Recording is off by default ([`TraceConfig::OFF`]); when disabled the
//! engine's tracer is `None` and every record site reduces to one branch
//! on a discriminant — no allocation, no event construction. When enabled,
//! the ring keeps the most recent [`TraceConfig::capacity`] events and
//! counts what it dropped, so a runaway run cannot exhaust memory.
//!
//! Export with [`TraceBuffer::to_chrome_json`] and open the file in
//! `ui.perfetto.dev` (or `chrome://tracing`): PE firings appear as slices
//! on one track per PE, FIFO occupancy as counter tracks, and memory
//! lifecycles as async spans correlated by sequence number.

use crate::engine::DomainLatency;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Tracing configuration, carried in
/// [`SimConfig`](crate::engine::SimConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record events at all. Off by default; the engine allocates no
    /// tracer when disabled.
    pub enabled: bool,
    /// Ring-buffer capacity in events. When the ring is full the oldest
    /// event is dropped (and counted in [`TraceBuffer::dropped`]).
    pub capacity: usize,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub const OFF: TraceConfig = TraceConfig {
        enabled: false,
        capacity: 0,
    };

    /// Tracing enabled with the default ring capacity (1 Mi events).
    #[must_use]
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            capacity: 1 << 20,
        }
    }

    /// Tracing enabled with an explicit ring capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig {
            enabled: true,
            capacity: capacity.max(1),
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::OFF
    }
}

/// Sentinel for "the issuing PE has no NUPEA domain" in
/// [`TraceEvent::MemDeliver`].
pub const NO_DOMAIN: u8 = u8::MAX;

/// One microarchitectural event. Timestamps (system cycles) are carried
/// alongside the event in the buffer, not inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A node fired at a fabric tick.
    Fire {
        /// DFG node index.
        node: u32,
    },
    /// A token was delivered into an input FIFO.
    FifoPush {
        /// Consumer node.
        node: u32,
        /// Input port.
        port: u8,
        /// Occupancy after the push (saturated at 255).
        occupancy: u8,
    },
    /// A token was consumed from an input FIFO.
    FifoPop {
        /// Consumer node.
        node: u32,
        /// Input port.
        port: u8,
        /// Occupancy after the pop (saturated at 255).
        occupancy: u8,
    },
    /// A token left `src` for `dst` over the data NoC.
    NocSend {
        /// Producer node.
        src: u32,
        /// Consumer node.
        dst: u32,
        /// Manhattan hop count between the two PEs.
        hops: u16,
    },
    /// A memory request was issued by a load/store node.
    MemIssue {
        /// Issuing node.
        node: u32,
        /// Per-node sequence number (correlates the lifecycle).
        seq: u64,
        /// Store (true) or load (false).
        is_store: bool,
    },
    /// The request was dequeued and serviced by a bank.
    MemBank {
        /// Issuing node.
        node: u32,
        /// Sequence number.
        seq: u64,
        /// Servicing bank (`u16::MAX` = fault path, no bank touched).
        bank: u16,
        /// Cache hit?
        hit: bool,
    },
    /// The response was delivered back at the issuing PE.
    MemDeliver {
        /// Issuing node.
        node: u32,
        /// Sequence number.
        seq: u64,
        /// Store (true) or load (false).
        is_store: bool,
        /// NUPEA domain of the issuing PE ([`NO_DOMAIN`] when none).
        domain: u8,
        /// Response-network arbiter hops the response traversed.
        resp_hops: u16,
        /// End-to-end latency in system cycles.
        latency: u64,
    },
    /// A watchdog / deadlock stall snapshot was taken.
    StallSnapshot {
        /// Number of stalled nodes in the report.
        stalled_nodes: u32,
        /// Residual buffered tokens.
        residual_tokens: u32,
    },
}

/// A sink for trace events. The engine drives an implementation of this
/// trait at every instrumented point; [`RingRecorder`] is the standard
/// bounded recorder and [`NullTracer`] discards everything (useful for
/// overhead measurements and as the explicit "off" object).
pub trait Tracer {
    /// Record `ev` at system-cycle `ts`.
    fn record(&mut self, ts: u64, ev: TraceEvent);
}

/// A tracer that discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn record(&mut self, _ts: u64, _ev: TraceEvent) {}
}

/// Bounded ring-buffered recorder: keeps the most recent `capacity`
/// events, dropping the oldest on overflow.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: VecDeque<(u64, TraceEvent)>,
    capacity: usize,
    dropped: u64,
    total: u64,
}

impl RingRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            buf: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
            total: 0,
        }
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was dropped).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events dropped to overflow so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finish recording: attach run metadata and return the buffer.
    #[must_use]
    pub fn into_buffer(self, meta: TraceMeta) -> TraceBuffer {
        TraceBuffer {
            meta,
            events: self.buf.into_iter().collect(),
            dropped: self.dropped,
            total: self.total,
        }
    }
}

impl Tracer for RingRecorder {
    #[inline]
    fn record(&mut self, ts: u64, ev: TraceEvent) {
        self.total += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((ts, ev));
    }
}

/// Static per-run metadata the exporter needs to label tracks: one entry
/// per DFG node.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct TraceMeta {
    /// Trace name (workload + memory model, free-form).
    pub name: String,
    /// Fabric clock divider (one fabric tick = `divider` system cycles).
    pub divider: u64,
    /// Per-node op label (`Debug` form).
    pub node_op: Vec<String>,
    /// Per-node placed PE index.
    pub node_pe: Vec<u32>,
    /// Per-node NUPEA domain of the placed PE ([`NO_DOMAIN`] when none).
    pub node_domain: Vec<u8>,
    /// Per-node criticality annotation: true for loads/stores classified
    /// `Critical` by the kernel's criticality analysis.
    pub node_critical: Vec<bool>,
    /// Number of NUPEA domains on the fabric.
    pub num_domains: u8,
}

/// A finished trace: recorded events (in record order) plus metadata and
/// overflow accounting.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TraceBuffer {
    /// Run metadata (node labels, placement, criticality).
    pub meta: TraceMeta,
    events: Vec<(u64, TraceEvent)>,
    /// Events dropped to ring overflow. When non-zero, aggregations over
    /// this buffer are partial.
    pub dropped: u64,
    /// Events recorded in total (buffered + dropped).
    pub total: u64,
}

impl TraceBuffer {
    /// The surviving events as `(system_cycle, event)`, in record order.
    /// Record order is non-decreasing in time for same-site events;
    /// lifecycle back-annotations (e.g. [`TraceEvent::MemBank`], recorded
    /// when the completion drains) may be locally out of order, which the
    /// exporter handles by sorting.
    #[must_use]
    pub fn events(&self) -> &[(u64, TraceEvent)] {
        &self.events
    }

    /// Aggregate completed-load latency by the issuing PE's NUPEA domain,
    /// purely from [`TraceEvent::MemDeliver`] events — the time-resolved
    /// counterpart of `RunStats::load_latency_by_domain`. When no events
    /// were dropped, the two agree exactly.
    #[must_use]
    pub fn load_latency_by_domain(&self) -> Vec<DomainLatency> {
        let n = usize::from(self.meta.num_domains).max(1);
        let mut out = vec![DomainLatency::default(); n];
        for &(_, ev) in &self.events {
            if let TraceEvent::MemDeliver {
                is_store: false,
                domain,
                latency,
                ..
            } = ev
            {
                if domain != NO_DOMAIN && usize::from(domain) < n {
                    let slot = &mut out[usize::from(domain)];
                    slot.total_latency += latency;
                    slot.count += 1;
                }
            }
        }
        out
    }

    /// Per-PE firing counts derived from [`TraceEvent::Fire`] events
    /// (keyed by PE index; PEs that never fired are absent).
    #[must_use]
    pub fn firings_per_pe(&self) -> Vec<(u32, u64)> {
        let mut map: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for &(_, ev) in &self.events {
            if let TraceEvent::Fire { node } = ev {
                if let Some(&pe) = self.meta.node_pe.get(node as usize) {
                    *map.entry(pe).or_default() += 1;
                }
            }
        }
        map.into_iter().collect()
    }

    fn node_label(&self, node: u32) -> String {
        let op = self
            .meta
            .node_op
            .get(node as usize)
            .map_or("?", String::as_str);
        format!("{op} n{node}")
    }

    /// Export as Chrome trace-event JSON (the "JSON Object Format"), which
    /// both `chrome://tracing` and `ui.perfetto.dev` open directly.
    ///
    /// Layout: pid 0 = the fabric (one tid per PE; firings are `X` slices
    /// of one fabric tick, NoC sends are `i` instants); pid 1 = the memory
    /// system (lifecycles are `b`/`n`/`e` async spans correlated by
    /// `node:seq`); FIFO occupancy is exported as `C` counter events;
    /// stall snapshots as global `i` instants. Timestamps are system
    /// cycles reported as microseconds (1 cycle = 1 µs in the UI).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut evs: Vec<(u64, usize, &TraceEvent)> = self
            .events
            .iter()
            .enumerate()
            .map(|(i, (ts, ev))| (*ts, i, ev))
            .collect();
        // Stable order: timestamp first, record order as the tiebreak.
        evs.sort_by_key(|&(ts, i, _)| (ts, i));

        let mut out = String::with_capacity(evs.len() * 96 + 4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
        let _ = write!(
            out,
            "\"trace\":\"{}\",\"divider\":{},\"events_recorded\":{},\"events_dropped\":{}",
            escape(&self.meta.name),
            self.meta.divider,
            self.total,
            self.dropped
        );
        out.push_str("},\"traceEvents\":[\n");

        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };

        // Process/thread naming metadata so Perfetto shows readable tracks.
        push(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"fabric\"}}"
                .to_string(),
            &mut out,
        );
        push(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"memory\"}}"
                .to_string(),
            &mut out,
        );
        let mut named_pes: Vec<u32> = self.meta.node_pe.clone();
        named_pes.sort_unstable();
        named_pes.dedup();
        for pe in named_pes {
            let domain = self
                .meta
                .node_pe
                .iter()
                .position(|&p| p == pe)
                .map_or(NO_DOMAIN, |i| self.meta.node_domain[i]);
            let dlabel = if domain == NO_DOMAIN {
                String::new()
            } else {
                format!(" D{domain}")
            };
            push(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{pe},\
                     \"args\":{{\"name\":\"PE {pe}{dlabel}\"}}}}"
                ),
                &mut out,
            );
        }

        let divider = self.meta.divider.max(1);
        for (ts, _, ev) in evs {
            let line = match *ev {
                TraceEvent::Fire { node } => {
                    let pe = self.meta.node_pe.get(node as usize).copied().unwrap_or(0);
                    let crit = self
                        .meta
                        .node_critical
                        .get(node as usize)
                        .copied()
                        .unwrap_or(false);
                    let cat = if crit { "fire,critical" } else { "fire" };
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
                         \"dur\":{divider},\"pid\":0,\"tid\":{pe}}}",
                        escape(&self.node_label(node)),
                    )
                }
                TraceEvent::FifoPush {
                    node,
                    port,
                    occupancy,
                }
                | TraceEvent::FifoPop {
                    node,
                    port,
                    occupancy,
                } => {
                    let pe = self.meta.node_pe.get(node as usize).copied().unwrap_or(0);
                    format!(
                        "{{\"name\":\"fifo n{node}p{port}\",\"cat\":\"fifo\",\"ph\":\"C\",\
                         \"ts\":{ts},\"pid\":0,\"tid\":{pe},\
                         \"args\":{{\"occupancy\":{occupancy}}}}}"
                    )
                }
                TraceEvent::NocSend { src, dst, hops } => {
                    let pe = self.meta.node_pe.get(src as usize).copied().unwrap_or(0);
                    format!(
                        "{{\"name\":\"noc {src}->{dst}\",\"cat\":\"noc\",\"ph\":\"i\",\
                         \"ts\":{ts},\"pid\":0,\"tid\":{pe},\"s\":\"t\",\
                         \"args\":{{\"hops\":{hops}}}}}"
                    )
                }
                TraceEvent::MemIssue {
                    node,
                    seq,
                    is_store,
                } => {
                    let kind = if is_store { "store" } else { "load" };
                    format!(
                        "{{\"name\":\"{kind} {}\",\"cat\":\"mem\",\"ph\":\"b\",\"ts\":{ts},\
                         \"pid\":1,\"tid\":{node},\"id\":\"{node}:{seq}\"}}",
                        escape(&self.node_label(node)),
                    )
                }
                TraceEvent::MemBank {
                    node,
                    seq,
                    bank,
                    hit,
                } => {
                    format!(
                        "{{\"name\":\"bank\",\"cat\":\"mem\",\"ph\":\"n\",\"ts\":{ts},\
                         \"pid\":1,\"tid\":{node},\"id\":\"{node}:{seq}\",\
                         \"args\":{{\"bank\":{bank},\"hit\":{hit}}}}}"
                    )
                }
                TraceEvent::MemDeliver {
                    node,
                    seq,
                    is_store,
                    domain,
                    resp_hops,
                    latency,
                } => {
                    let kind = if is_store { "store" } else { "load" };
                    format!(
                        "{{\"name\":\"{kind} {}\",\"cat\":\"mem\",\"ph\":\"e\",\"ts\":{ts},\
                         \"pid\":1,\"tid\":{node},\"id\":\"{node}:{seq}\",\
                         \"args\":{{\"domain\":{domain},\"resp_hops\":{resp_hops},\
                         \"latency\":{latency}}}}}",
                        escape(&self.node_label(node)),
                    )
                }
                TraceEvent::StallSnapshot {
                    stalled_nodes,
                    residual_tokens,
                } => {
                    format!(
                        "{{\"name\":\"stall\",\"cat\":\"watchdog\",\"ph\":\"i\",\"ts\":{ts},\
                         \"pid\":0,\"tid\":0,\"s\":\"g\",\
                         \"args\":{{\"stalled_nodes\":{stalled_nodes},\
                         \"residual_tokens\":{residual_tokens}}}}}"
                    )
                }
            };
            push(line, &mut out);
        }
        out.push_str("\n]}");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome trace-event schema validation (used by tests and the
// `trace_check` CI binary). A minimal JSON parser lives here so the
// workspace stays dependency-free.
// ---------------------------------------------------------------------------

/// Summary of a validated Chrome trace-event JSON document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ChromeTraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Complete (`X`) duration events.
    pub complete: usize,
    /// Counter (`C`) events.
    pub counters: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Async begin/instant/end (`b`/`n`/`e`) events.
    pub asyncs: usize,
    /// Metadata (`M`) events.
    pub metadata: usize,
}

/// Validate a Chrome trace-event JSON document (object format): a top
/// level object with a `traceEvents` array whose entries each carry the
/// keys the schema requires for their phase (`name`/`ph` strings, numeric
/// `ts`/`pid`/`tid` on non-metadata events, an `id` on async events, an
/// `args.occupancy`-style object where present).
///
/// # Errors
///
/// Returns a description of the first schema violation (or JSON syntax
/// error) found.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let value = json::parse(text)?;
    let json::Value::Object(top) = &value else {
        return Err("top level must be a JSON object".into());
    };
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing \"traceEvents\" key")?;
    let json::Value::Array(items) = events else {
        return Err("\"traceEvents\" must be an array".into());
    };
    let mut summary = ChromeTraceSummary {
        events: items.len(),
        ..ChromeTraceSummary::default()
    };
    for (i, item) in items.iter().enumerate() {
        let json::Value::Object(ev) = item else {
            return Err(format!("event {i}: not an object"));
        };
        let get = |key: &str| ev.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let ph = match get("ph") {
            Some(json::Value::String(s)) if s.chars().count() == 1 => s.clone(),
            Some(_) => return Err(format!("event {i}: \"ph\" must be a 1-char string")),
            None => return Err(format!("event {i}: missing \"ph\"")),
        };
        match get("name") {
            Some(json::Value::String(_)) => {}
            _ => return Err(format!("event {i}: missing string \"name\"")),
        }
        let want_num = |key: &str| match get(key) {
            Some(json::Value::Number(x)) if x.is_finite() => Ok(()),
            _ => Err(format!("event {i} (ph {ph}): missing numeric \"{key}\"")),
        };
        match ph.as_str() {
            "M" => summary.metadata += 1,
            "X" => {
                want_num("ts")?;
                want_num("dur")?;
                want_num("pid")?;
                want_num("tid")?;
                summary.complete += 1;
            }
            "C" => {
                want_num("ts")?;
                want_num("pid")?;
                match get("args") {
                    Some(json::Value::Object(_)) => {}
                    _ => return Err(format!("event {i}: counter needs an \"args\" object")),
                }
                summary.counters += 1;
            }
            "i" | "I" => {
                want_num("ts")?;
                want_num("pid")?;
                want_num("tid")?;
                summary.instants += 1;
            }
            "b" | "n" | "e" => {
                want_num("ts")?;
                want_num("pid")?;
                if get("id").is_none() {
                    return Err(format!("event {i}: async event (ph {ph}) needs an \"id\""));
                }
                summary.asyncs += 1;
            }
            other => return Err(format!("event {i}: unknown phase \"{other}\"")),
        }
    }
    Ok(summary)
}

/// Minimal recursive-descent JSON parser (strings, numbers, bools, null,
/// arrays, objects) — just enough to validate exported traces without an
/// external dependency.
mod json {
    pub enum Value {
        Null,
        /// The validator never needs the truth value, only the type.
        Bool,
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, *pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::String(string(b, pos)?)),
            Some(b't') => lit(b, pos, b"true").map(|()| Value::Bool),
            Some(b'f') => lit(b, pos, b"false").map(|()| Value::Bool),
            Some(b'n') => lit(b, pos, b"null").map(|()| Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, want: &[u8]) -> Result<(), String> {
        if b.len() - *pos >= want.len() && &b[*pos..*pos + want.len()] == want {
            *pos += want.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                c if c < 0x20 => return Err(format!("raw control char at byte {}", *pos)),
                _ => {
                    // Bulk-copy the run of unescaped bytes. The delimiters
                    // (quote, backslash, control chars) are all ASCII, so a
                    // run bounded by them within a `&str` is valid UTF-8.
                    let start = *pos;
                    while *pos < b.len() && !matches!(b[*pos], b'"' | b'\\' | 0x00..=0x1f) {
                        *pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&b[start..*pos])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                }
            }
        }
        Err("unterminated string".into())
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            expect(b, pos, b':')?;
            let v = value(b, pos)?;
            fields.push((key, v));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(nodes: usize) -> TraceMeta {
        TraceMeta {
            name: "unit".to_string(),
            divider: 2,
            node_op: (0..nodes).map(|i| format!("Op{i}")).collect(),
            node_pe: (0..nodes as u32).collect(),
            node_domain: vec![0; nodes],
            node_critical: vec![false; nodes],
            num_domains: 4,
        }
    }

    #[test]
    fn ring_preserves_record_order() {
        let mut r = RingRecorder::new(16);
        for t in 0..10u64 {
            r.record(t, TraceEvent::Fire { node: t as u32 });
        }
        let buf = r.into_buffer(meta(10));
        let times: Vec<u64> = buf.events().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, (0..10).collect::<Vec<_>>());
        assert_eq!(buf.dropped, 0);
        assert_eq!(buf.total, 10);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let mut r = RingRecorder::new(4);
        for t in 0..10u64 {
            r.record(t, TraceEvent::Fire { node: t as u32 });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let buf = r.into_buffer(meta(10));
        let times: Vec<u64> = buf.events().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![6, 7, 8, 9], "most recent events survive");
        assert_eq!(buf.total, 10);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = RingRecorder::new(0);
        r.record(1, TraceEvent::Fire { node: 0 });
        r.record(2, TraceEvent::Fire { node: 1 });
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn domain_aggregation_counts_loads_only() {
        let mut r = RingRecorder::new(64);
        for (seq, (domain, latency, is_store)) in [
            (0u8, 10u64, false),
            (1, 20, false),
            (0, 30, false),
            (2, 99, true),
        ]
        .into_iter()
        .enumerate()
        {
            r.record(
                100 + seq as u64,
                TraceEvent::MemDeliver {
                    node: 0,
                    seq: seq as u64,
                    is_store,
                    domain,
                    resp_hops: 0,
                    latency,
                },
            );
        }
        // A delivery with no domain must be skipped too.
        r.record(
            200,
            TraceEvent::MemDeliver {
                node: 0,
                seq: 9,
                is_store: false,
                domain: NO_DOMAIN,
                resp_hops: 0,
                latency: 1,
            },
        );
        let buf = r.into_buffer(meta(1));
        let agg = buf.load_latency_by_domain();
        assert_eq!(agg.len(), 4);
        assert_eq!((agg[0].total_latency, agg[0].count), (40, 2));
        assert_eq!((agg[1].total_latency, agg[1].count), (20, 1));
        assert_eq!(
            (agg[2].total_latency, agg[2].count),
            (0, 0),
            "stores skipped"
        );
    }

    #[test]
    fn chrome_export_sorts_by_timestamp_and_validates() {
        let mut r = RingRecorder::new(64);
        // Back-annotated event with an earlier timestamp than the previous
        // record: the exporter must sort it into place.
        r.record(5, TraceEvent::Fire { node: 0 });
        r.record(
            3,
            TraceEvent::MemBank {
                node: 1,
                seq: 1,
                bank: 2,
                hit: true,
            },
        );
        r.record(
            2,
            TraceEvent::MemIssue {
                node: 1,
                seq: 1,
                is_store: false,
            },
        );
        r.record(
            7,
            TraceEvent::MemDeliver {
                node: 1,
                seq: 1,
                is_store: false,
                domain: 0,
                resp_hops: 2,
                latency: 5,
            },
        );
        r.record(
            4,
            TraceEvent::NocSend {
                src: 0,
                dst: 1,
                hops: 3,
            },
        );
        r.record(
            4,
            TraceEvent::FifoPush {
                node: 1,
                port: 0,
                occupancy: 1,
            },
        );
        r.record(
            9,
            TraceEvent::StallSnapshot {
                stalled_nodes: 1,
                residual_tokens: 2,
            },
        );
        let json = r.into_buffer(meta(2)).to_chrome_json();
        let summary = validate_chrome_trace(&json).expect("schema-valid");
        assert_eq!(summary.complete, 1);
        assert_eq!(summary.asyncs, 3);
        assert_eq!(summary.counters, 1);
        assert_eq!(summary.instants, 2, "noc send + stall snapshot");
        assert!(summary.metadata >= 2, "process names present");
        // Timestamps of non-metadata events are non-decreasing.
        let mut last = 0.0f64;
        for part in json.split("\"ts\":").skip(1) {
            let ts: f64 = part.split([',', '}']).next().unwrap().parse().unwrap();
            assert!(ts >= last, "export must be time-sorted: {ts} after {last}");
            last = ts;
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("[]").is_err(), "top must be object");
        assert!(
            validate_chrome_trace("{\"foo\":1}").is_err(),
            "no traceEvents"
        );
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err(),
            "missing ph"
        );
        assert!(
            validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\"pid\":0,\"tid\":0}]}"
            )
            .is_err(),
            "complete event needs dur"
        );
        assert!(
            validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"b\",\"ts\":1,\"pid\":0,\"tid\":0}]}"
            )
            .is_err(),
            "async event needs id"
        );
        assert!(
            validate_chrome_trace("{\"traceEvents\":").is_err(),
            "syntax"
        );
        let ok = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\"dur\":2,\
                  \"pid\":0,\"tid\":3}]}";
        assert_eq!(validate_chrome_trace(ok).unwrap().complete, 1);
    }

    #[test]
    fn null_tracer_discards_everything() {
        let mut t = NullTracer;
        t.record(1, TraceEvent::Fire { node: 0 });
        // Nothing observable: NullTracer has no state. This test exists to
        // keep the trait object path exercised.
    }
}

//! Design-space exploration: compare fabric topologies, track budgets, and
//! fabric sizes for one workload — the §7.2 study in miniature.
//!
//!     cargo run --release --example topology_explorer

use nupea::{auto_parallelize, Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_fabric::{Fabric, TopologyKind};
use nupea_kernels::workloads::{sparse, WorkloadSpec};

fn main() {
    println!("spmspv (96x96, 90% sparse) across fabrics — auto-parallelized\n");
    println!(
        "{:<18} {:>6} {:>7} {:>5} {:>10} {:>9} {:>4}",
        "fabric", "tracks", "LS PEs", "par", "cycles", "max hops", "div"
    );
    for topo in [
        TopologyKind::Monaco,
        TopologyKind::ClusteredSingle,
        TopologyKind::ClusteredDouble,
    ] {
        for size in [8usize, 12, 16] {
            for tracks in [2u32, 3, 7] {
                let Ok(fabric) = Fabric::of_kind(topo, size, size, tracks) else {
                    continue;
                };
                let ls = fabric.num_ls_pes();
                let sys = SystemConfig::builder()
                    .fabric(fabric)
                    .divider_override(None)
                    .build();
                let spec = WorkloadSpec {
                    name: "spmspv",
                    build: |_, par| sparse::spmspv_custom(96, 0.9, par),
                    default_par: 1,
                };
                let label = format!("{topo} {size}x{size}");
                match auto_parallelize(&spec, Scale::Bench, &sys, Heuristic::CriticalityAware) {
                    Ok((w, compiled)) => {
                        let cycles = compiled
                            .simulate(MemoryModel::Nupea)
                            .map(|s| s.cycles.to_string())
                            .unwrap_or_else(|e| format!("sim err {e}"));
                        println!(
                            "{label:<18} {tracks:>6} {ls:>7} {:>5} {cycles:>10} {:>9} {:>4}",
                            w.par, compiled.placed.timing.max_hops, compiled.placed.timing.divider
                        );
                    }
                    Err(e) => println!("{label:<18} {tracks:>6} {ls:>7}  does not fit: {e}"),
                }
            }
        }
    }
}

//! Writing your own kernel **against the low-level builder API**: a
//! histogram with data-dependent control flow (conditional stores through
//! `if_else`) and a pointer-chase (the classic critical-load pattern),
//! both validated under the untimed interpreter and the timed simulator.
//!
//! LEGACY PATH: direct `Kernel::build` closures are the builder's raw
//! interface — kept for generators and fuzzers that construct graphs
//! programmatically. New workloads should be written in the `nupea-lang`
//! eDSL instead (see `examples/lang_kernel.rs` and DESIGN.md §13), which
//! lowers to this same builder IR but adds scope checking, typed
//! diagnostics, checked `ld_crit` criticality annotations, and a scalar
//! reference interpreter for free.
//!
//!     cargo run --release --example custom_kernel

use nupea::{Heuristic, MemoryModel, SystemConfig};
use nupea_ir::graph::Criticality;
use nupea_kernels::builder::Kernel;
use nupea_kernels::interp_kernel;
use nupea_kernels::workloads::{Check, Workload};
use nupea_sim::{MemParams, SimMemory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Kernel 1: clipped histogram -----------------------------------
    let mut mem = SimMemory::new(&MemParams::default());
    let data: Vec<i64> = (0..96).map(|i| (i * 31 + 7) % 13 - 3).collect();
    let src = mem.alloc_init(&data);
    let hist = mem.alloc(8);
    let n = data.len() as i64;

    let kernel = Kernel::build("histogram", |c| {
        c.for_range(0, n, 1, &[], &[], |c, i, _, _| {
            let a = c.add(i, src);
            let v = c.load(a);
            let in_range = {
                let ge = c.ge(v, 0);
                let lt = c.lt(v, 8);
                c.and(ge, lt)
            };
            // Conditional read-modify-write: only in-range values count.
            c.if_else(
                in_range,
                &[v],
                |c, ins| {
                    let slot = c.add(ins[0], hist);
                    let cur = c.load(slot);
                    let slot2 = c.add(ins[0], hist);
                    let inc = c.add(cur, 1);
                    c.store(slot2, inc);
                    vec![]
                },
                |_, _| vec![],
            );
            vec![]
        });
    });

    let mut expected = vec![0i64; 8];
    for &v in &data {
        if (0..8).contains(&v) {
            expected[v as usize] += 1;
        }
    }
    // NOTE: iterations of this loop have a read-modify-write dependence on
    // the same bin. The simulator's per-node in-order responses plus the
    // single shared load/store instruction pair serialize same-bin updates
    // naturally at this parallelism (par = 1).
    let mut mem_check = mem.clone();
    let r = interp_kernel(&kernel, mem_check.words_mut(), &[])?;
    assert!(r.is_balanced());
    assert_eq!(mem_check.slice(hist, 8), &expected[..]);
    println!(
        "histogram: interpreter validated, {} firings",
        r.total_firings
    );

    let w = Workload {
        name: "histogram",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "bins",
            base: hist,
            expected,
        }],
        par: 1,
    };
    let sys = SystemConfig::monaco_12x12();
    let compiled = sys.compile(&w, Heuristic::CriticalityAware)?;
    let stats = compiled.simulate(MemoryModel::Nupea)?;
    println!(
        "histogram: timed run validated in {} cycles\n",
        stats.cycles
    );

    // ---- Kernel 2: pointer chase (critical load) -----------------------
    let mut mem = SimMemory::new(&MemParams::default());
    // A shuffled singly linked list: next[i], terminated by -1.
    let len = 64usize;
    let list = mem.alloc(len);
    let order: Vec<usize> = (0..len).map(|i| (i * 29) % len).collect();
    for w2 in order.windows(2) {
        mem.write(list as usize + w2[0], list + w2[1] as i64);
    }
    mem.write(list as usize + order[len - 1], -1);
    let head = list + order[0] as i64;
    let out = mem.alloc(1);

    let kernel = Kernel::build("chase", |c| {
        let head_v = c.stream_const(head);
        let zero = c.imm(0);
        let exits = c.while_loop(
            &[head_v, zero],
            &[],
            |c, vars, _| c.ne(vars[0], -1),
            |c, vars, _| {
                let next = c.load(vars[0]); // the critical load
                let cnt = c.add(vars[1], 1);
                vec![next, cnt]
            },
        );
        let addr = c.stream_const(out);
        c.store(addr, exits[1]);
    });
    let crit = kernel
        .dfg()
        .iter()
        .filter(|(_, nd)| nd.op.is_memory() && nd.meta.criticality == Some(Criticality::Critical))
        .count();
    println!("pointer chase: {crit} critical load(s) found by the analysis");

    let w = Workload {
        name: "chase",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "len",
            base: out,
            expected: vec![len as i64],
        }],
        par: 1,
    };
    let compiled = sys.compile(&w, Heuristic::CriticalityAware)?;
    let fast = compiled.simulate(MemoryModel::Nupea)?;
    let slow = compiled.simulate(MemoryModel::Upea(4))?;
    println!(
        "pointer chase: NUPEA {} cycles vs UPEA4 {} cycles ({:.2}x) — \
         every added cycle of load latency lands on the recurrence",
        fast.cycles,
        slow.cycles,
        slow.cycles as f64 / fast.cycles as f64
    );
    Ok(())
}

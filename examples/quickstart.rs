//! Quickstart: build a kernel, compile it onto Monaco, simulate it under
//! the NUPEA memory model, and inspect where the compiler placed the
//! memory instructions.
//!
//! This walkthrough uses the low-level builder API to show the raw
//! steer/carry/invariant lowering; for authoring real kernels prefer the
//! `nupea-lang` eDSL front end (`examples/lang_kernel.rs`, DESIGN.md §13).
//!
//!     cargo run --release --example quickstart

use nupea::{Heuristic, MemoryModel, SystemConfig};
use nupea_kernels::builder::Kernel;
use nupea_kernels::workloads::{Check, Workload};
use nupea_sim::{MemParams, SimMemory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Some input data in simulated memory: a little array to reduce.
    let mut mem = SimMemory::new(&MemParams::default());
    let data: Vec<i64> = (0..64).map(|i| (i * 37) % 101 - 50).collect();
    let base = mem.alloc_init(&data);
    let out = mem.alloc(1);

    // 2. A kernel in the structured builder DSL: sum = Σ data[i].
    //    The builder lowers this to steer/carry/invariant dataflow gates —
    //    the execution model of a spatial dataflow architecture.
    let n = data.len() as i64;
    let kernel = Kernel::build("sum64", |c| {
        let zero = c.imm(0);
        let sums = c.for_range(0, n, 1, &[zero], &[], |c, i, acc, _| {
            let addr = c.add(i, base);
            let v = c.load(addr);
            vec![c.add(acc[0], v)]
        });
        let addr = c.stream_const(out);
        c.store(addr, sums[0]);
        c.sink(sums[0], "sum");
    });
    println!(
        "kernel: {} dataflow nodes, {} memory ops",
        kernel.dfg().len(),
        kernel.dfg().num_memory_ops()
    );

    // 3. Wrap it as a workload with a validation check.
    let expected: i64 = data.iter().sum();
    let workload = Workload {
        name: "sum64",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "sum",
            base: out,
            expected: vec![expected],
        }],
        par: 1,
    };

    // 4. Compile with effcc's criticality-aware place-and-route.
    let sys = SystemConfig::builder().build();
    let compiled = sys.compile(&workload, Heuristic::CriticalityAware)?;
    println!(
        "pnr: max routed path {} hops, clock divider {}",
        compiled.placed.timing.max_hops, compiled.placed.timing.divider
    );
    let hist = compiled
        .placed
        .domain_histogram(workload.kernel.dfg(), &sys.fabric);
    println!("memory instructions per NUPEA domain (D0 fastest): {hist:?}");
    println!(
        "placement map (memory on the right edge; m/M = memory op, a = arith, c = control):\n{}",
        nupea_pnr::render_placement(workload.kernel.dfg(), &sys.fabric, &compiled.placed)
    );

    // 5. Simulate cycle-accurately; results are validated automatically.
    for model in [MemoryModel::Nupea, MemoryModel::Upea(2), MemoryModel::IDEAL] {
        let stats = compiled.simulate(model)?;
        println!(
            "{:<10} {:>6} system cycles  ({} firings, {:.0}% cache hits)",
            model.label(),
            stats.cycles,
            stats.firings,
            stats.cache_hit_rate * 100.0
        );
    }
    println!("reference sum = {expected} — validated on every run");
    Ok(())
}

//! Authoring kernels in the `nupea-lang` eDSL — the recommended front
//! end (DESIGN.md §13). The `kernel!` macro turns structured imperative
//! surface syntax into a checked AST; `Program::lower()` emits the same
//! builder IR as the hand-written workloads, so the result drops
//! straight into PnR and the cycle-accurate engine.
//!
//!     cargo run --release --example lang_kernel
//!
//! The example builds a sparse dot product over two sorted index lists
//! (the two-pointer merge at the heart of `spmspv`), annotates the
//! loop-governing index loads as critical with `ld_crit`, and shows the
//! full verification ladder: scalar reference interpreter → lowered
//! graph under the untimed IR interpreter → timed simulation, with the
//! NUPEA-vs-UPEA cycle gap at the end.

use nupea::{Heuristic, MemoryModel, SystemConfig};
use nupea_ir::interp::Interp;
use nupea_kernels::workloads::{Check, Workload};
use nupea_lang::kernel;
use nupea_sim::{MemParams, SimMemory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two sorted index lists with payload values, a classic sparse join.
    let a_idx: Vec<i64> = vec![1, 4, 6, 9, 12, 17, 23, 31];
    let a_val: Vec<i64> = vec![2, -3, 5, 7, 1, -2, 4, 6];
    let b_idx: Vec<i64> = vec![0, 4, 9, 10, 17, 22, 31, 40];
    let b_val: Vec<i64> = vec![9, 3, -1, 8, 2, 5, -4, 7];

    let mut mem = SimMemory::new(&MemParams::default());
    let ai = mem.alloc_init(&a_idx);
    let av = mem.alloc_init(&a_val);
    let bi = mem.alloc_init(&b_idx);
    let bv = mem.alloc_init(&b_val);
    let na = a_idx.len() as i64;
    let nb = b_idx.len() as i64;

    // The eDSL program. `ld_crit` asserts the index loads sit on the
    // loop-governing recurrence — the lowering rejects the program if
    // the classifier disagrees (try swapping one for the payload load).
    let program = kernel! {
        name: "sparse-dot";
        let mut ia = stream(0);
        let mut ib = stream(0);
        let mut dot = stream(0);
        while (ia.lt(na) & ib.lt(nb)) {
            let ka = ld_crit(ai + ia);
            let kb = ld_crit(bi + ib);
            if (ka.eq(kb)) {
                dot = dot + ld(av + ia) * ld(bv + ib);
            }
            ia = ia + ka.le(kb);
            ib = ib + ka.ge(kb);
        }
        sink "dot" = dot;
    }?;
    println!(
        "program {:?} hash {:#018x}",
        program.name(),
        program.fnv1a_hash()
    );

    // Rung 1: the scalar reference interpreter defines ground truth.
    let mut scalar_mem = mem.clone();
    let scalar = program.interpret(scalar_mem.words_mut(), &[])?;
    println!("scalar interpreter: dot = {}", scalar.sinks[0][0]);

    // Rung 2: lower to the dataflow IR and re-run, untimed.
    let kernel = program.lower()?;
    println!(
        "lowered: {} nodes, {} critical loads",
        kernel.dfg().len(),
        kernel.critical_loads().len()
    );
    let mut ir_mem = mem.clone();
    let mut it = Interp::new(kernel.dfg());
    for (pid, v) in kernel.bindings(&[]) {
        it.bind(pid, v);
    }
    let ir = it.run(ir_mem.words_mut())?;
    assert_eq!(scalar.sinks, ir.sinks, "scalar and IR semantics agree");

    // Rung 3: place-and-route onto Monaco and simulate, timed. The sink
    // check makes every `simulate` call validate the result against the
    // scalar interpreter's ground truth automatically.
    let expected = scalar.sinks[0].clone();
    let w = Workload {
        name: "sparse-dot",
        kernel,
        mem,
        checks: vec![Check::Sink {
            label: "dot",
            index: 0,
            expected,
        }],
        par: 1,
    };
    let sys = SystemConfig::monaco_12x12();
    let nupea = sys
        .compile(&w, Heuristic::CriticalityAware)?
        .simulate(MemoryModel::Nupea)?;
    let upea = sys
        .compile(&w, Heuristic::DomainUnaware)?
        .simulate(MemoryModel::Upea(3))?;
    println!(
        "timed: NUPEA {} cycles vs UPEA-2 {} cycles ({:.2}x on the critical chase)",
        nupea.cycles,
        upea.cycles,
        upea.cycles as f64 / nupea.cycles as f64
    );
    Ok(())
}

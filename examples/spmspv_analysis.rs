//! The paper's running example end to end: sparse matrix × sparse vector
//! with its stream-join intersection (Fig. 3/5), criticality analysis,
//! NUPEA-aware placement, and the Fig. 6c comparison.
//!
//!     cargo run --release --example spmspv_analysis

use nupea::runner::ExperimentRunner;
use nupea::{Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_ir::graph::Criticality;
use nupea_kernels::workloads::workload_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = workload_by_name("spmspv").expect("spmspv registered");
    let w = spec.build_default(Scale::Bench);
    let g = w.kernel.dfg();

    // Criticality analysis: the index loads along the iA/iV recurrences
    // govern the loop condition — they are the critical loads of Fig. 5.
    println!("== criticality analysis ==");
    for class in [
        Criticality::Critical,
        Criticality::InnerLoop,
        Criticality::Other,
    ] {
        let n = g
            .iter()
            .filter(|(_, nd)| nd.op.is_memory() && nd.meta.criticality == Some(class))
            .count();
        println!("  {class}: {n} memory instructions");
    }

    // Where does NUPEA-aware PnR put them?
    let sys = SystemConfig::monaco_12x12();
    let compiled = sys.compile(&w, Heuristic::CriticalityAware)?;
    println!("\n== placement (memory instructions per domain, D0 fastest) ==");
    for class in [
        Criticality::Critical,
        Criticality::InnerLoop,
        Criticality::Other,
    ] {
        let hist = compiled.placed.domain_histogram_for(g, &sys.fabric, class);
        println!("  {class}: {hist:?}");
    }

    // Fig. 6c: NUPEA vs ideal and practical uniform access.
    println!("\n== Fig 6c comparison ==");
    let models = [
        MemoryModel::Upea(0),
        MemoryModel::Nupea,
        MemoryModel::Upea(2),
    ];
    let mut runner = ExperimentRunner::new();
    let sh = runner.system(sys);
    let wh = runner.workload(w);
    runner.model_sweep(wh, sh, &models);
    let report = runner.run();
    let base = report
        .records
        .iter()
        .find(|r| r.model == MemoryModel::Nupea)
        .unwrap()
        .cycles as f64;
    for r in &report.records {
        println!(
            "  {:<7} {:>8} cycles (norm {:.3}, mean load latency {:.1})",
            r.model.label(),
            r.cycles,
            r.cycles as f64 / base,
            r.mean_load_latency
        );
    }
    Ok(())
}

//! Capture Chrome trace-event timelines of the paper's running example:
//! spmspv under NUPEA vs practical uniform access (UPEA-2), written as
//! Perfetto-loadable JSON.
//!
//!     cargo run --release --example trace_dump [-- OUT_DIR]
//!
//! Open the emitted `.trace.json` files at <https://ui.perfetto.dev>:
//! process 0 is the fabric (one thread per PE; fires of critical loads
//! carry the `critical` category), process 1 is the memory system (async
//! arrows from issue to delivery, counter tracks for FIFO occupancy).

use nupea::{Heuristic, MemoryModel, Scale, SimOptions, SystemConfig};
use nupea_kernels::workloads::workload_by_name;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/traces".into())
        .into();
    std::fs::create_dir_all(&out_dir)?;

    let spec = workload_by_name("spmspv").expect("spmspv registered");
    let w = spec.build_default(Scale::Test);
    println!(
        "spmspv has {} critical loads (the stream-join index loads of Fig. 5)",
        w.kernel.critical_loads().len()
    );

    let sys = SystemConfig::monaco_12x12();
    for (model, heuristic) in [
        (MemoryModel::Nupea, Heuristic::CriticalityAware),
        (MemoryModel::Upea(2), Heuristic::DomainUnaware),
    ] {
        let compiled = sys.compile(&w, heuristic)?;
        let out = compiled.simulate_with(&SimOptions::new(model).trace())?;
        let (stats, trace) = (out.stats, out.trace.expect("trace was requested"));
        // The trace is a faithful event log: aggregating its MemDeliver
        // events reproduces the engine's per-domain statistics exactly.
        assert_eq!(
            trace.load_latency_by_domain(),
            stats.load_latency_by_domain,
            "trace aggregation must match RunStats"
        );
        println!(
            "\n== {} ({} cycles, {} events, {} dropped) ==",
            model.label(),
            stats.cycles,
            trace.events().len(),
            trace.dropped
        );
        for (d, dl) in stats.load_latency_by_domain.iter().enumerate() {
            if dl.count > 0 {
                println!(
                    "  D{d}: {:>6} loads, mean latency {:.1} cycles",
                    dl.count,
                    dl.total_latency as f64 / dl.count as f64
                );
            }
        }
        println!(
            "  {} of {} PEs active, mean utilization {:.3}, peak link {} tokens",
            stats.active_pes(),
            sys.fabric.num_pes(),
            stats.mean_pe_utilization(),
            stats.peak_link_tokens()
        );
        let path = out_dir.join(format!(
            "spmspv-{}.trace.json",
            model.label().to_lowercase().replace(' ', "-")
        ));
        std::fs::write(&path, trace.to_chrome_json())?;
        println!("  wrote {}", path.display());
    }
    println!("\nopen the .trace.json files at https://ui.perfetto.dev");
    Ok(())
}
